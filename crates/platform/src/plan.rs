//! What-if availability plans.
//!
//! A [`Plan`] is a snapshot of a machine's *future* availability: the
//! running jobs' expected release times plus any tentative commitments the
//! scheduler has made while exploring a schedule (window permutations,
//! reservations). Plans answer two questions the paper's algorithm needs:
//!
//! * *step 5* — "find an earliest time that it can obtain enough nodes"
//!   ([`Plan::earliest_start`]), and
//! * *step 6* — "would starting this backfill job now delay a protected
//!   reservation?" ([`Plan::can_place_at`] against a plan holding the
//!   protected reservations).
//!
//! Speculative search uses [`Plan::commit_at`] / [`Plan::rollback`] in
//! strict LIFO order instead of cloning the profile per permutation —
//! the hot loop of window allocation does no heap allocation beyond the
//! commitment vector's amortized growth.
//!
//! Correctness note: the earliest feasible start of a rigid job on a
//! profile is always either the requested lower bound or the release time
//! of some commitment (capacity/shape only improves at releases), so
//! [`Plan::earliest_start`] scans exactly those candidate instants.
//!
//! ## Memoized base profiles (hot path)
//!
//! Every base commitment starts at the snapshot instant (they are the
//! *running* jobs), so the base load is a monotone step function of time:
//! capacity only returns at release instants. Each plan therefore builds,
//! once at construction, a sorted timeline of distinct base release
//! instants with the cumulative load (node level / busy-unit mask) still
//! held from each instant on. Queries answer the base part with one
//! binary search and only scan the *overlay* — the few speculative
//! commitments added by `commit_at` — linearly. The overlay is shared
//! copy-free across all permutation candidates of a window search:
//! commit pushes, rollback pops, and the base profile is never touched.
//! [`Plan::set_reference`] switches a plan back to the original
//! full-scan query path; the differential suite in
//! `tests/hotpath_identity.rs` proves both paths byte-identical.

use amjs_sim::{SimDuration, SimTime};

use crate::mask::UnitMask;
use crate::Nodes;

/// Proof of a speculative commitment; hand it back to [`Plan::rollback`]
/// in LIFO order to undo.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a committed placement must be rolled back or intentionally kept"]
pub struct PlanToken(pub(crate) usize);

/// Where a job was placed in a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Start time chosen for the job.
    pub start: SimTime,
    /// Token to undo the commitment.
    pub token: usize,
}

/// The geometry a plan chose for a commitment. The scheduler passes this
/// back to [`crate::Platform::allocate_hinted`] so the live machine boots
/// the *same* partition the plan reasoned about — without this, a
/// backfill admission proven safe against a reservation in the plan could
/// land on a different block on the machine and delay that reservation
/// after all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PlacementHint {
    /// First unit of the chosen block (0 on geometry-free machines).
    pub unit_start: u16,
    /// Unit length of the chosen block (0 = no geometry, machine's
    /// choice).
    pub unit_len: u16,
}

/// A cloneable what-if availability profile. See the module docs.
pub trait Plan: Clone {
    /// The instant the plan was snapshotted; commitments never begin
    /// before it.
    fn now(&self) -> SimTime;

    /// Total machine nodes.
    fn total_nodes(&self) -> Nodes;

    /// Rounded (allocatable) size of a request — matches the live
    /// machine's rounding.
    fn rounded_size(&self, nodes: Nodes) -> Nodes;

    /// Whether a job of `nodes` for `duration` could run over
    /// `[start, start + duration)` without conflicting with any
    /// commitment in the plan.
    fn can_place_at(&self, nodes: Nodes, start: SimTime, duration: SimDuration) -> bool;

    /// The earliest start `>= not_before` at which the job fits. Returns
    /// [`SimTime::MAX`] only for requests larger than the machine.
    fn earliest_start(&self, nodes: Nodes, duration: SimDuration, not_before: SimTime) -> SimTime;

    /// Commit the job at exactly `start`; `None` if it does not fit
    /// there.
    fn commit_at(
        &mut self,
        nodes: Nodes,
        start: SimTime,
        duration: SimDuration,
    ) -> Option<PlanToken>;

    /// Find the earliest feasible start `>= not_before` and commit there.
    /// Returns `None` only for requests larger than the machine.
    fn place_earliest(
        &mut self,
        nodes: Nodes,
        duration: SimDuration,
        not_before: SimTime,
    ) -> Option<(SimTime, PlanToken)> {
        let start = self.earliest_start(nodes, duration, not_before);
        if start == SimTime::MAX {
            return None;
        }
        let token = self
            .commit_at(nodes, start, duration)
            .expect("earliest_start returned an infeasible time");
        Some((start, token))
    }

    /// Undo the most recent outstanding commitment. Must be called in
    /// strict LIFO order; panics otherwise, and panics on attempts to
    /// roll back the snapshot's base (running-job) commitments.
    fn rollback(&mut self, token: PlanToken);

    /// The geometry chosen for an outstanding commitment (the all-zero
    /// hint on geometry-free machines).
    fn hint_of(&self, token: &PlanToken) -> PlacementHint;

    /// Void a commitment in place (non-LIFO): it stops occupying any
    /// resources but keeps its slot, so other tokens stay valid. Used by
    /// the scheduler to drop *advisory* reservations from a plan while
    /// keeping the starts and protected reservations exactly where the
    /// window pass put them. Consumes the token; a deactivated
    /// commitment cannot be rolled back.
    fn deactivate(&mut self, token: PlanToken);

    /// Number of commitments, including the base running jobs. Exposed
    /// for cost accounting in benchmarks.
    fn commitment_count(&self) -> usize;

    /// Switch the plan to its naive (pre-memoization) reference query
    /// path. Differential-testing hook: answers must be identical either
    /// way; the reference path simply rescans every commitment per query
    /// instead of using the memoized base profile. Default: no-op (plans
    /// without an optimized path have nothing to switch).
    fn set_reference(&mut self, _on: bool) {}

    /// Whether [`Plan::set_reference`] routed this plan onto the naive
    /// path. Callers that layer their own shortcut structures over plan
    /// queries (e.g. the fair-share drain's proven-interval pruning)
    /// consult this to keep reference runs fully naive.
    fn is_reference(&self) -> bool {
        false
    }

    /// How many of `sizes` (node requests, in request order) fit
    /// simultaneously at `now` under greedy placement, checking
    /// occupancy at the instant `now` only. Exact *only* while every
    /// overlay commitment starts at `now`: then busy capacity over any
    /// window starting at `now` equals busy capacity at `now`, so a
    /// single-instant walk reproduces what sequential
    /// [`Plan::place_earliest`] calls would decide. The fair-start
    /// drain uses this as its all-at-`now` fast path; plans without an
    /// efficient walk may return 0 (callers fall back to the full
    /// drain). Stops early at a request larger than the machine.
    fn fit_now_count(&self, _sizes: &[Nodes]) -> usize {
        0
    }
}

/// Merged, deduplicated ascending walk over the memoized base release
/// instants and the plan's incrementally sorted overlay ends — exactly
/// the candidate sequence the naive path builds with an allocation and
/// a sort per call. `overlay_ends` must be sorted ascending; duplicate
/// values are skipped during the walk.
fn merged_end_candidates(
    base_ends: &[SimTime],
    overlay_ends: &[SimTime],
    not_before: SimTime,
    mut try_candidate: impl FnMut(SimTime) -> bool,
) -> Option<SimTime> {
    let mut bi = base_ends.partition_point(|&e| e <= not_before);
    let mut oi = overlay_ends.partition_point(|&e| e <= not_before);
    loop {
        let t = match (base_ends.get(bi), overlay_ends.get(oi)) {
            (Some(&b), Some(&o)) => {
                if b <= o {
                    bi += 1;
                    b
                } else {
                    oi += 1;
                    o
                }
            }
            (Some(&b), None) => {
                bi += 1;
                b
            }
            (None, Some(&o)) => {
                oi += 1;
                o
            }
            (None, None) => return None,
        };
        // Skip overlay duplicates of the yielded instant (the naive
        // path deduplicates its collected candidate list).
        while overlay_ends.get(oi) == Some(&t) {
            oi += 1;
        }
        if try_candidate(t) {
            return Some(t);
        }
    }
}

/// Insert `end` into an ascending overlay-end list (duplicates kept —
/// the list is a sorted multiset, one entry per overlay commitment).
#[inline]
fn overlay_ends_insert(ends: &mut Vec<SimTime>, end: SimTime) {
    let pos = ends.partition_point(|&e| e <= end);
    ends.insert(pos, end);
}

/// Remove one instance of `end` from an ascending overlay-end list.
#[inline]
fn overlay_ends_remove(ends: &mut Vec<SimTime>, end: SimTime) {
    let pos = ends.partition_point(|&e| e < end);
    debug_assert!(ends.get(pos) == Some(&end), "overlay end list out of sync");
    ends.remove(pos);
}

/// Ensure the overlay timeline has a breakpoint at `t`; return its
/// segment index. Segment `i` covers `[times[i], times[i+1])` (the last
/// one extends forever); `vals[i]` is the overlay load in that segment.
/// `t` must be at or after the timeline origin (`times[0]`, the plan's
/// `now`) — overlay commitments never start in the past.
fn timeline_split<V: Copy>(times: &mut Vec<SimTime>, vals: &mut Vec<V>, t: SimTime) -> usize {
    let i = times.partition_point(|&x| x < t);
    if times.get(i) == Some(&t) {
        return i;
    }
    debug_assert!(
        i > 0,
        "overlay commitments never start before the plan origin"
    );
    let carried = vals[i - 1];
    times.insert(i, t);
    vals.insert(i, carried);
    i
}

/// Apply `f` to every overlay timeline segment covering `[start, end)`,
/// splitting boundary segments as needed. Because concurrent placements
/// are disjoint (levels add, blocks never share units while live), the
/// inverse update applied over the same interval removes a commitment
/// exactly — rollback and deactivation need no undo journal. Stale
/// breakpoints left behind by removals are harmless (adjacent equal
/// segments) and die with the plan clone at the end of the pass.
fn timeline_apply<V: Copy>(
    times: &mut Vec<SimTime>,
    vals: &mut Vec<V>,
    start: SimTime,
    end: SimTime,
    mut f: impl FnMut(&mut V),
) {
    if start >= end {
        return;
    }
    let s = timeline_split(times, vals, start);
    let e = timeline_split(times, vals, end);
    for v in &mut vals[s..e] {
        f(v);
    }
}

/// One busy interval of the profile.
#[derive(Clone, Copy, Debug)]
struct Commitment {
    /// First unit of the block (partitioned) or 0 (flat).
    unit_start: u16,
    /// Unit length of the block (partitioned) or the raw node count (flat).
    unit_len: u32,
    start: SimTime,
    end: SimTime,
}

impl Commitment {
    #[inline]
    fn overlaps_time(&self, start: SimTime, end: SimTime) -> bool {
        // The guard matters for voided commitments (empty intervals):
        // the classic half-open test misfires on them.
        self.start < self.end && self.start < end && start < self.end
    }

    /// Void the commitment: an empty interval overlaps nothing.
    #[inline]
    fn void(&mut self) {
        self.end = self.start;
    }
}

// ---------------------------------------------------------------------------
// FlatPlan
// ---------------------------------------------------------------------------

/// Availability profile of a [`crate::FlatCluster`]: only aggregate free
/// capacity matters.
#[derive(Clone, Debug)]
pub struct FlatPlan {
    now: SimTime,
    total: Nodes,
    /// Out-of-service nodes; never promised to any placement.
    down: Nodes,
    base_len: usize,
    commitments: Vec<Commitment>,
    /// Distinct base release instants, ascending (memoized profile).
    base_ends: Vec<SimTime>,
    /// `base_level[i]` = nodes still held by base commitments at any
    /// instant in `[base_ends[i-1], base_ends[i])`; one trailing 0 for
    /// "after the last release". (Base commitments all start at `now`,
    /// so the base load is non-increasing.)
    base_level: Vec<Nodes>,
    /// Current end instant of every overlay commitment, kept sorted
    /// ascending (a multiset) so candidate walks need no allocation.
    overlay_ends: Vec<SimTime>,
    /// Overlay load timeline: `overlay_level[i]` nodes are held by
    /// overlay commitments during `[overlay_times[i], overlay_times[i+1])`
    /// (the last segment extends forever). Kept exact under commit,
    /// rollback, and deactivation, so every query costs the segments it
    /// touches instead of a scan over all overlay commitments.
    overlay_times: Vec<SimTime>,
    overlay_level: Vec<Nodes>,
    /// Route queries through the naive full-scan path (differential
    /// testing; see [`Plan::set_reference`]).
    reference: bool,
}

impl FlatPlan {
    /// New plan with the given busy base load: `(nodes, release_time)`
    /// per running job.
    pub fn new(now: SimTime, total: Nodes, running: &[(Nodes, SimTime)]) -> Self {
        let commitments: Vec<Commitment> = running
            .iter()
            .map(|&(nodes, release)| Commitment {
                unit_start: 0,
                unit_len: nodes,
                start: now,
                end: release.max(now + SimDuration::from_secs(1)),
            })
            .collect();
        // Memoize the base step profile: per distinct release instant,
        // the load still held from the *previous* instant up to it.
        let mut by_end: Vec<(SimTime, Nodes)> =
            commitments.iter().map(|c| (c.end, c.unit_len)).collect();
        by_end.sort_unstable_by_key(|&(e, _)| e);
        let mut base_ends: Vec<SimTime> = Vec::with_capacity(by_end.len());
        let mut releasing: Vec<Nodes> = Vec::new();
        for (e, n) in by_end {
            if base_ends.last() == Some(&e) {
                *releasing.last_mut().expect("paired with base_ends") += n;
            } else {
                base_ends.push(e);
                releasing.push(n);
            }
        }
        // Suffix-sum the per-instant releases into levels: the level
        // before instant i is everything releasing at i or later.
        let mut base_level: Vec<Nodes> = vec![0; base_ends.len() + 1];
        for i in (0..base_ends.len()).rev() {
            base_level[i] = base_level[i + 1] + releasing[i];
        }
        FlatPlan {
            now,
            total,
            down: 0,
            base_len: commitments.len(),
            commitments,
            base_ends,
            base_level,
            overlay_ends: Vec::new(),
            overlay_times: vec![now],
            overlay_level: vec![0],
            reference: false,
        }
    }

    /// Exclude `down` out-of-service nodes from every placement answer
    /// (the machine's failed capacity).
    pub fn with_down(mut self, down: Nodes) -> Self {
        assert!(down <= self.total);
        self.down = down;
        self
    }

    /// In-service capacity.
    fn in_service(&self) -> Nodes {
        self.total - self.down
    }

    /// Nodes in use at instant `t` according to the plan (naive: full
    /// commitment scan — the reference path).
    fn used_at_naive(&self, t: SimTime) -> Nodes {
        self.commitments
            .iter()
            .filter(|c| c.start <= t && t < c.end)
            .map(|c| c.unit_len)
            .sum()
    }

    /// Base load at instant `t` (memoized suffix-sum profile).
    fn base_at(&self, t: SimTime) -> Nodes {
        if t < self.now {
            // Base commitments start at `now`; before it they hold
            // nothing (matches the naive `c.start <= t` filter).
            0
        } else {
            self.base_level[self.base_ends.partition_point(|&e| e <= t)]
        }
    }

    /// Overlay load at instant `t` (timeline segment lookup).
    fn overlay_at(&self, t: SimTime) -> Nodes {
        let i = self.overlay_times.partition_point(|&x| x <= t);
        if i == 0 {
            0
        } else {
            self.overlay_level[i - 1]
        }
    }

    /// Nodes in use at instant `t`: memoized base level + overlay
    /// timeline lookup.
    fn used_at_fast(&self, t: SimTime) -> Nodes {
        self.base_at(t) + self.overlay_at(t)
    }

    fn can_place_at_naive(&self, nodes: Nodes, start: SimTime, duration: SimDuration) -> bool {
        let end = start + duration.max(SimDuration::from_secs(1));
        // Capacity only decreases at commitment starts, so checking the
        // window start plus every commitment start inside the window
        // covers all minima of free capacity.
        if self.used_at_naive(start) + nodes > self.in_service() {
            return false;
        }
        for c in &self.commitments {
            if c.start > start
                && c.start < end
                && self.used_at_naive(c.start) + nodes > self.in_service()
            {
                return false;
            }
        }
        true
    }

    fn can_place_at_fast(&self, nodes: Nodes, start: SimTime, duration: SimDuration) -> bool {
        let end = start + duration.max(SimDuration::from_secs(1));
        let cap = self.in_service();
        if self.used_at_fast(start) + nodes > cap {
            return false;
        }
        // Base commitments all start at `now`: the only base probe
        // instant the naive scan would visit is `now` itself.
        if self.base_len > 0
            && self.now > start
            && self.now < end
            && self.used_at_fast(self.now) + nodes > cap
        {
            return false;
        }
        // The load sum only rises at overlay breakpoints after `start`
        // (the base level never rises past `now`), so probing every
        // timeline breakpoint inside the window covers all maxima.
        let mut i = self.overlay_times.partition_point(|&x| x <= start);
        while i < self.overlay_times.len() && self.overlay_times[i] < end {
            if self.base_at(self.overlay_times[i]) + self.overlay_level[i] + nodes > cap {
                return false;
            }
            i += 1;
        }
        true
    }
}

impl Plan for FlatPlan {
    fn now(&self) -> SimTime {
        self.now
    }

    fn total_nodes(&self) -> Nodes {
        self.total
    }

    fn rounded_size(&self, nodes: Nodes) -> Nodes {
        nodes.max(1)
    }

    fn can_place_at(&self, nodes: Nodes, start: SimTime, duration: SimDuration) -> bool {
        let nodes = self.rounded_size(nodes);
        if nodes > self.in_service() {
            return false;
        }
        if self.reference {
            self.can_place_at_naive(nodes, start, duration)
        } else {
            self.can_place_at_fast(nodes, start, duration)
        }
    }

    fn earliest_start(&self, nodes: Nodes, duration: SimDuration, not_before: SimTime) -> SimTime {
        let nodes = self.rounded_size(nodes);
        if nodes > self.in_service() {
            return SimTime::MAX;
        }
        let not_before = not_before.max(self.now);
        if self.can_place_at(nodes, not_before, duration) {
            return not_before;
        }
        if self.reference {
            let mut candidates: Vec<SimTime> = self
                .commitments
                .iter()
                .map(|c| c.end)
                .filter(|&e| e > not_before)
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            for t in candidates {
                if self.can_place_at(nodes, t, duration) {
                    return t;
                }
            }
        } else if let Some(t) =
            merged_end_candidates(&self.base_ends, &self.overlay_ends, not_before, |t| {
                self.can_place_at_fast(nodes, t, duration)
            })
        {
            return t;
        }
        unreachable!("a job no larger than the machine fits after all releases")
    }

    fn commit_at(
        &mut self,
        nodes: Nodes,
        start: SimTime,
        duration: SimDuration,
    ) -> Option<PlanToken> {
        if !self.can_place_at(nodes, start, duration) {
            return None;
        }
        let nodes = self.rounded_size(nodes);
        let end = start + duration.max(SimDuration::from_secs(1));
        debug_assert!(start >= self.now, "placements never start in the past");
        self.commitments.push(Commitment {
            unit_start: 0,
            unit_len: nodes,
            start,
            end,
        });
        overlay_ends_insert(&mut self.overlay_ends, end);
        timeline_apply(
            &mut self.overlay_times,
            &mut self.overlay_level,
            start,
            end,
            |v| *v += nodes,
        );
        Some(PlanToken(self.commitments.len() - 1))
    }

    fn rollback(&mut self, token: PlanToken) {
        assert!(
            token.0 >= self.base_len,
            "cannot roll back a base (running-job) commitment"
        );
        assert_eq!(token.0, self.commitments.len() - 1, "rollback must be LIFO");
        let c = self.commitments.pop().expect("LIFO token checked above");
        overlay_ends_remove(&mut self.overlay_ends, c.end);
        timeline_apply(
            &mut self.overlay_times,
            &mut self.overlay_level,
            c.start,
            c.end,
            |v| *v -= c.unit_len,
        );
    }

    fn hint_of(&self, _token: &PlanToken) -> PlacementHint {
        PlacementHint::default()
    }

    fn deactivate(&mut self, token: PlanToken) {
        assert!(
            token.0 >= self.base_len,
            "cannot deactivate a base (running-job) commitment"
        );
        let (start, old_end, nodes) = {
            let c = &self.commitments[token.0];
            (c.start, c.end, c.unit_len)
        };
        self.commitments[token.0].void();
        // Voiding moves the commitment's end to its start; mirror that
        // in the sorted end list (the naive path still collects the
        // voided end value as a candidate) and release its load.
        overlay_ends_remove(&mut self.overlay_ends, old_end);
        overlay_ends_insert(&mut self.overlay_ends, start);
        timeline_apply(
            &mut self.overlay_times,
            &mut self.overlay_level,
            start,
            old_end,
            |v| *v -= nodes,
        );
    }

    fn commitment_count(&self) -> usize {
        self.commitments.len()
    }

    fn set_reference(&mut self, on: bool) {
        self.reference = on;
    }

    fn is_reference(&self) -> bool {
        self.reference
    }

    fn fit_now_count(&self, sizes: &[Nodes]) -> usize {
        if self.reference {
            return 0; // keep the reference path on the full drain
        }
        let cap = self.in_service();
        let mut used = self.used_at_fast(self.now);
        for (i, &n) in sizes.iter().enumerate() {
            let n = self.rounded_size(n);
            if used + n > cap {
                return i;
            }
            used += n;
        }
        sizes.len()
    }
}

// ---------------------------------------------------------------------------
// PartitionPlan
// ---------------------------------------------------------------------------

/// Availability profile of a [`crate::BgpCluster`]: jobs occupy aligned
/// power-of-two runs of midplane units (or the full machine), so
/// placement must find a *specific* free block, not just free capacity.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    now: SimTime,
    units: u16,
    nodes_per_unit: Nodes,
    max_block: u16,
    /// Out-of-service units; never promised to any placement.
    down: UnitMask,
    base_len: usize,
    commitments: Vec<Commitment>,
    /// Distinct base release instants, ascending (memoized profile).
    base_ends: Vec<SimTime>,
    /// `cum_masks[i]` = union of base blocks still held at any instant in
    /// `[base_ends[i-1], base_ends[i])`; one trailing empty mask for
    /// "after the last release". (Base blocks all start at `now`, so the
    /// busy-unit set only shrinks, at release instants.)
    cum_masks: Vec<UnitMask>,
    /// Current end instant of every overlay commitment, kept sorted
    /// ascending (a multiset) so candidate walks need no allocation.
    overlay_ends: Vec<SimTime>,
    /// Overlay busy timeline: `mask_pool[overlay_seg[i]]` is the union
    /// of units held by overlay commitments during `[overlay_times[i],
    /// overlay_times[i+1])` (the last segment extends forever). Live
    /// overlay blocks never share units at overlapping instants (each
    /// commit checks the busy mask first), so clearing a block's range
    /// removes it exactly — rollback and deactivation stay journal-free.
    /// Masks live in an append-only pool (one entry per segment) so
    /// splitting a segment shifts 12-byte entries, not 128-byte masks.
    overlay_times: Vec<SimTime>,
    overlay_seg: Vec<u32>,
    mask_pool: Vec<UnitMask>,
    /// `units.div_ceil(64)`: how many mask words this machine can touch.
    /// Busy-mask ORs stop there instead of walking all of
    /// [`crate::mask::MAX_UNITS`].
    mask_words: usize,
    /// Route queries through the naive full-scan path (differential
    /// testing; see [`Plan::set_reference`]).
    reference: bool,
}

impl PartitionPlan {
    /// New plan for a machine of `units` midplanes of `nodes_per_unit`
    /// nodes, with running blocks `(unit_start, unit_len, release_time)`.
    pub fn new(
        now: SimTime,
        units: u16,
        nodes_per_unit: Nodes,
        running: &[(u16, u16, SimTime)],
    ) -> Self {
        assert!(
            units >= 1 && (units as usize) <= crate::mask::MAX_UNITS,
            "unit count out of range"
        );
        let max_block = prev_power_of_two(units);
        let commitments: Vec<Commitment> = running
            .iter()
            .map(|&(unit_start, unit_len, release)| Commitment {
                unit_start,
                unit_len: unit_len as u32,
                start: now,
                end: release.max(now + SimDuration::from_secs(1)),
            })
            .collect();
        // Memoize the base mask profile: cumulative union of the blocks
        // still held before each distinct release instant.
        let mut order: Vec<usize> = (0..commitments.len()).collect();
        order.sort_unstable_by_key(|&i| commitments[i].end);
        let mut base_ends: Vec<SimTime> = Vec::new();
        for &i in &order {
            if base_ends.last() != Some(&commitments[i].end) {
                base_ends.push(commitments[i].end);
            }
        }
        let mut cum_masks: Vec<UnitMask> = vec![UnitMask::empty(); base_ends.len() + 1];
        for &i in order.iter().rev() {
            let c = &commitments[i];
            let slot = base_ends.partition_point(|&e| e < c.end);
            debug_assert_eq!(base_ends[slot], c.end);
            cum_masks[slot].set_range(c.unit_start, c.unit_len as u16);
        }
        // Suffix-OR: the mask before instant i holds everything
        // releasing at i or later.
        for i in (0..base_ends.len()).rev() {
            let next = cum_masks[i + 1];
            cum_masks[i].or_with(&next);
        }
        PartitionPlan {
            now,
            units,
            nodes_per_unit,
            max_block,
            down: UnitMask::empty(),
            base_len: commitments.len(),
            commitments,
            base_ends,
            cum_masks,
            overlay_ends: Vec::new(),
            overlay_times: vec![now],
            overlay_seg: vec![0],
            mask_pool: vec![UnitMask::empty()],
            mask_words: (units as usize).div_ceil(64),
            reference: false,
        }
    }

    /// Ensure the overlay timeline has a breakpoint at `t`; return its
    /// segment index. New segments get a fresh pool entry (pool indices
    /// are never shared between segments, so in-place mask edits stay
    /// per-segment).
    fn tl_split(&mut self, t: SimTime) -> usize {
        let i = self.overlay_times.partition_point(|&x| x < t);
        if self.overlay_times.get(i) == Some(&t) {
            return i;
        }
        debug_assert!(
            i > 0,
            "overlay commitments never start before the plan origin"
        );
        let carried = self.mask_pool[self.overlay_seg[i - 1] as usize];
        self.mask_pool.push(carried);
        self.overlay_times.insert(i, t);
        self.overlay_seg
            .insert(i, (self.mask_pool.len() - 1) as u32);
        i
    }

    /// Apply `f` to the mask of every overlay segment covering
    /// `[start, end)`, splitting boundary segments as needed.
    fn tl_apply(&mut self, start: SimTime, end: SimTime, f: impl Fn(&mut UnitMask)) {
        if start >= end {
            return;
        }
        let s = self.tl_split(start);
        let e = self.tl_split(end);
        for &idx in &self.overlay_seg[s..e] {
            f(&mut self.mask_pool[idx as usize]);
        }
    }

    /// Exclude the units in `down` from every placement answer (the
    /// machine's failed midplanes).
    pub fn with_down(mut self, down: UnitMask) -> Self {
        self.down = down;
        self
    }

    /// Unit length a request rounds to, or `None` if larger than the
    /// machine. Power-of-two up to `max_block`, else the full machine.
    fn rounded_units(&self, nodes: Nodes) -> Option<u16> {
        let req = nodes.max(1).div_ceil(self.nodes_per_unit);
        if req > self.units as u32 {
            return None;
        }
        let k = (req as u16).next_power_of_two();
        if k > self.max_block {
            Some(self.units) // full-machine partition
        } else {
            Some(k)
        }
    }

    /// Bitmask of units unusable at any point during `[start, end)`:
    /// busy with a commitment or out of service. (Naive: full commitment
    /// scan — the reference path.)
    fn busy_mask_naive(&self, start: SimTime, end: SimTime) -> UnitMask {
        let mut mask = self.down;
        for c in &self.commitments {
            if c.overlaps_time(start, end) {
                mask.set_range(c.unit_start, c.unit_len as u16);
            }
        }
        mask
    }

    /// Busy mask over `[start, end)`: memoized cumulative base mask +
    /// overlay timeline segments covering the window.
    fn busy_mask_fast(&self, start: SimTime, end: SimTime) -> UnitMask {
        let mut mask = self.down;
        // Base blocks all run over [now, release): one overlaps the
        // query window iff now < end and its release is after `start`.
        if self.base_len > 0 && self.now < end {
            let other = self.cum_masks[self.base_ends.partition_point(|&e| e <= start)];
            mask.or_with_words(&other, self.mask_words);
        }
        let mut i = self.overlay_times.partition_point(|&x| x <= start);
        if i > 0 {
            mask.or_with_words(
                &self.mask_pool[self.overlay_seg[i - 1] as usize],
                self.mask_words,
            );
        }
        while i < self.overlay_times.len() && self.overlay_times[i] < end {
            mask.or_with_words(
                &self.mask_pool[self.overlay_seg[i] as usize],
                self.mask_words,
            );
            i += 1;
        }
        mask
    }

    #[inline]
    fn busy_mask(&self, start: SimTime, end: SimTime) -> UnitMask {
        if self.reference {
            self.busy_mask_naive(start, end)
        } else {
            self.busy_mask_fast(start, end)
        }
    }

    /// Lowest-index aligned free block of `k` units under `busy`, if any.
    fn find_free_block(&self, k: u16, busy: &UnitMask) -> Option<u16> {
        if k == self.units {
            // Also covers the non-power-of-two full-machine rounding.
            return busy.is_empty().then_some(0);
        }
        if self.reference {
            let mut start = 0u16;
            while start + k <= self.units {
                if busy.range_is_clear(start, k) {
                    return Some(start);
                }
                start += k;
            }
            None
        } else {
            busy.first_clear_aligned_block(k, self.units)
        }
    }
}

impl Plan for PartitionPlan {
    fn now(&self) -> SimTime {
        self.now
    }

    fn total_nodes(&self) -> Nodes {
        self.units as Nodes * self.nodes_per_unit
    }

    fn rounded_size(&self, nodes: Nodes) -> Nodes {
        match self.rounded_units(nodes) {
            Some(k) => k as Nodes * self.nodes_per_unit,
            None => Nodes::MAX,
        }
    }

    fn can_place_at(&self, nodes: Nodes, start: SimTime, duration: SimDuration) -> bool {
        let Some(k) = self.rounded_units(nodes) else {
            return false;
        };
        let end = start + duration.max(SimDuration::from_secs(1));
        let busy = self.busy_mask(start, end);
        self.find_free_block(k, &busy).is_some()
    }

    fn earliest_start(&self, nodes: Nodes, duration: SimDuration, not_before: SimTime) -> SimTime {
        let Some(k) = self.rounded_units(nodes) else {
            return SimTime::MAX;
        };
        // With units out of service the request may not fit even on an
        // otherwise empty machine.
        if self.find_free_block(k, &self.down).is_none() {
            return SimTime::MAX;
        }
        let not_before = not_before.max(self.now);
        if self.can_place_at(nodes, not_before, duration) {
            return not_before;
        }
        if self.reference {
            let mut candidates: Vec<SimTime> = self
                .commitments
                .iter()
                .map(|c| c.end)
                .filter(|&e| e > not_before)
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            for t in candidates {
                if self.can_place_at(nodes, t, duration) {
                    return t;
                }
            }
        } else if let Some(t) =
            merged_end_candidates(&self.base_ends, &self.overlay_ends, not_before, |t| {
                let end = t + duration.max(SimDuration::from_secs(1));
                let busy = self.busy_mask_fast(t, end);
                self.find_free_block(k, &busy).is_some()
            })
        {
            return t;
        }
        unreachable!("a job no larger than the machine fits after all releases")
    }

    fn commit_at(
        &mut self,
        nodes: Nodes,
        start: SimTime,
        duration: SimDuration,
    ) -> Option<PlanToken> {
        let k = self.rounded_units(nodes)?;
        let end = start + duration.max(SimDuration::from_secs(1));
        let busy = self.busy_mask(start, end);
        let block = self.find_free_block(k, &busy)?;
        debug_assert!(start >= self.now, "placements never start in the past");
        self.commitments.push(Commitment {
            unit_start: block,
            unit_len: k as u32,
            start,
            end,
        });
        overlay_ends_insert(&mut self.overlay_ends, end);
        self.tl_apply(start, end, |m| m.set_range(block, k));
        Some(PlanToken(self.commitments.len() - 1))
    }

    fn rollback(&mut self, token: PlanToken) {
        assert!(
            token.0 >= self.base_len,
            "cannot roll back a base (running-job) commitment"
        );
        assert_eq!(token.0, self.commitments.len() - 1, "rollback must be LIFO");
        let c = self.commitments.pop().expect("LIFO token checked above");
        overlay_ends_remove(&mut self.overlay_ends, c.end);
        self.tl_apply(c.start, c.end, |m| {
            m.clear_range(c.unit_start, c.unit_len as u16)
        });
    }

    fn hint_of(&self, token: &PlanToken) -> PlacementHint {
        let c = &self.commitments[token.0];
        PlacementHint {
            unit_start: c.unit_start,
            unit_len: c.unit_len as u16,
        }
    }

    fn deactivate(&mut self, token: PlanToken) {
        assert!(
            token.0 >= self.base_len,
            "cannot deactivate a base (running-job) commitment"
        );
        let (start, old_end, block, k) = {
            let c = &self.commitments[token.0];
            (c.start, c.end, c.unit_start, c.unit_len as u16)
        };
        self.commitments[token.0].void();
        // Voiding moves the commitment's end to its start; mirror that
        // in the sorted end list (the naive path still collects the
        // voided end value as a candidate) and release its block.
        overlay_ends_remove(&mut self.overlay_ends, old_end);
        overlay_ends_insert(&mut self.overlay_ends, start);
        self.tl_apply(start, old_end, |m| m.clear_range(block, k));
    }

    fn commitment_count(&self) -> usize {
        self.commitments.len()
    }

    fn set_reference(&mut self, on: bool) {
        self.reference = on;
    }

    fn is_reference(&self) -> bool {
        self.reference
    }

    fn fit_now_count(&self, sizes: &[Nodes]) -> usize {
        if self.reference {
            return 0; // keep the reference path on the full drain
        }
        // Busy units at the instant `now` (base, overlay, and down);
        // the greedy walk packs blocks into it exactly as sequential
        // commits at `now` would.
        let mut busy = self.busy_mask_fast(self.now, self.now + SimDuration::from_secs(1));
        for (i, &n) in sizes.iter().enumerate() {
            let Some(k) = self.rounded_units(n) else {
                return i;
            };
            let Some(block) = self.find_free_block(k, &busy) else {
                return i;
            };
            busy.set_range(block, k);
        }
        sizes.len()
    }
}

/// Largest power of two `<= n` (n >= 1).
fn prev_power_of_two(n: u16) -> u16 {
    debug_assert!(n >= 1);
    let npot = n.next_power_of_two();
    if npot == n {
        n
    } else {
        npot / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: i64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    // ----- FlatPlan -----

    #[test]
    fn flat_empty_machine_starts_immediately() {
        let p = FlatPlan::new(t(0), 100, &[]);
        assert_eq!(p.earliest_start(100, d(60), t(0)), t(0));
        assert!(p.can_place_at(100, t(0), d(60)));
        assert!(!p.can_place_at(101, t(0), d(60)));
        assert_eq!(p.earliest_start(101, d(60), t(0)), SimTime::MAX);
    }

    #[test]
    fn flat_waits_for_release() {
        // 80 nodes busy until t=100; a 50-node job must wait.
        let p = FlatPlan::new(t(0), 100, &[(80, t(100))]);
        assert_eq!(p.earliest_start(50, d(10), t(0)), t(100));
        assert_eq!(p.earliest_start(20, d(10), t(0)), t(0));
    }

    #[test]
    fn flat_future_reservation_blocks_long_jobs_only() {
        let mut p = FlatPlan::new(t(0), 100, &[]);
        // Reserve 100 nodes over [50, 150).
        let tok = p.commit_at(100, t(50), d(100)).unwrap();
        // A 30-second job fits before the reservation...
        assert!(p.can_place_at(10, t(0), d(30)));
        // ...a 60-second one does not.
        assert!(!p.can_place_at(10, t(0), d(60)));
        assert_eq!(p.earliest_start(10, d(60), t(0)), t(150));
        p.rollback(tok);
        assert!(p.can_place_at(10, t(0), d(60)));
    }

    #[test]
    fn flat_not_before_is_respected() {
        let p = FlatPlan::new(t(0), 100, &[]);
        assert_eq!(p.earliest_start(10, d(10), t(500)), t(500));
    }

    #[test]
    fn flat_not_before_clamped_to_now() {
        let p = FlatPlan::new(t(100), 100, &[]);
        assert_eq!(p.earliest_start(10, d(10), t(0)), t(100));
    }

    #[test]
    fn flat_zero_duration_treated_as_one_second() {
        let mut p = FlatPlan::new(t(0), 10, &[]);
        let tok = p.commit_at(10, t(0), d(0)).unwrap();
        assert!(!p.can_place_at(1, t(0), d(1)));
        assert_eq!(p.earliest_start(1, d(1), t(0)), t(1));
        p.rollback(tok);
    }

    #[test]
    fn flat_capacity_dip_in_window_is_detected() {
        // Free now, but 95 nodes start at t=20 for 100s. A 10-node,
        // 60-second job cannot start at t=0.
        let mut p = FlatPlan::new(t(0), 100, &[]);
        let _keep = p.commit_at(95, t(20), d(100)).unwrap();
        assert!(!p.can_place_at(10, t(0), d(60)));
        assert!(p.can_place_at(5, t(0), d(60)));
        assert_eq!(p.earliest_start(10, d(60), t(0)), t(120));
    }

    #[test]
    fn flat_place_earliest_commits() {
        let mut p = FlatPlan::new(t(0), 100, &[(100, t(50))]);
        let (start, tok) = p.place_earliest(60, d(10), t(0)).unwrap();
        assert_eq!(start, t(50));
        // Second identical job must queue behind the first.
        let (start2, tok2) = p.place_earliest(60, d(10), t(0)).unwrap();
        assert_eq!(start2, t(60));
        p.rollback(tok2);
        p.rollback(tok);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn flat_rollback_out_of_order_panics() {
        let mut p = FlatPlan::new(t(0), 100, &[]);
        let tok1 = p.commit_at(10, t(0), d(10)).unwrap();
        let _tok2 = p.commit_at(10, t(0), d(10)).unwrap();
        p.rollback(tok1);
    }

    #[test]
    #[should_panic(expected = "base")]
    fn flat_rollback_of_base_panics() {
        let mut p = FlatPlan::new(t(0), 100, &[(10, t(50))]);
        p.rollback(PlanToken(0));
    }

    #[test]
    fn flat_running_job_past_estimate_clamps_to_now() {
        // Release time in the past must not make nodes free "now".
        let p = FlatPlan::new(t(100), 100, &[(100, t(40))]);
        assert!(!p.can_place_at(10, t(100), d(10)));
        assert_eq!(p.earliest_start(10, d(10), t(100)), t(101));
    }

    // ----- PartitionPlan -----

    /// Intrepid-like geometry scaled down: 8 units of 512 nodes.
    fn small_bgp(running: &[(u16, u16, SimTime)]) -> PartitionPlan {
        PartitionPlan::new(t(0), 8, 512, running)
    }

    #[test]
    fn partition_rounds_to_power_of_two_units() {
        let p = small_bgp(&[]);
        assert_eq!(p.rounded_size(1), 512);
        assert_eq!(p.rounded_size(512), 512);
        assert_eq!(p.rounded_size(513), 1024);
        assert_eq!(p.rounded_size(1500), 2048);
        assert_eq!(p.rounded_size(4096), 4096);
        assert_eq!(p.rounded_size(4097), Nodes::MAX);
    }

    #[test]
    fn partition_full_machine_on_nonpow2_units() {
        // 10 units, max pow2 block = 8; an 9-unit request takes all 10.
        let p = PartitionPlan::new(t(0), 10, 512, &[]);
        assert_eq!(p.rounded_size(8 * 512 + 1), 10 * 512);
        assert_eq!(p.total_nodes(), 5120);
    }

    #[test]
    fn partition_alignment_causes_fragmentation() {
        // Units 1 and 2 busy: a 2-unit job needs an aligned pair
        // {0,1},{2,3},{4,5},{6,7}; pairs {4,5} and {6,7} are free.
        let p = small_bgp(&[(1, 2, t(1000))]);
        assert!(p.can_place_at(1024, t(0), d(10)));
        // Now block units 4..8 too: only units 0 and 3 are free — enough
        // capacity for 2 units, but no aligned free pair.
        let p = small_bgp(&[(1, 2, t(1000)), (4, 4, t(1000))]);
        assert!(!p.can_place_at(1024, t(0), d(10)));
        // A single-unit job still fits (unit 0).
        assert!(p.can_place_at(512, t(0), d(10)));
        // The 2-unit job can start when the pair releases at t=1000.
        assert_eq!(p.earliest_start(1024, d(10), t(0)), t(1000));
    }

    #[test]
    fn partition_commit_takes_lowest_block() {
        let mut p = small_bgp(&[]);
        let _a = p.commit_at(512, t(0), d(100)).unwrap();
        // Next single-unit job goes to unit 1, so a 4-unit job can still
        // use the upper half.
        let _b = p.commit_at(512, t(0), d(100)).unwrap();
        assert!(p.can_place_at(2048, t(0), d(100)));
    }

    #[test]
    fn partition_full_machine_needs_everything_free() {
        let mut p = small_bgp(&[]);
        assert!(p.can_place_at(4096, t(0), d(10)));
        let tok = p.commit_at(512, t(0), d(50)).unwrap();
        assert!(!p.can_place_at(4096, t(0), d(10)));
        assert_eq!(p.earliest_start(4096, d(10), t(0)), t(50));
        p.rollback(tok);
        assert!(p.can_place_at(4096, t(0), d(10)));
    }

    #[test]
    fn partition_earliest_start_respects_future_reservations() {
        let mut p = small_bgp(&[]);
        // Reserve the whole machine over [100, 200).
        let _keep = p.commit_at(4096, t(100), d(100)).unwrap();
        // A 90-second single-unit job fits before it; 150-second does not.
        assert_eq!(p.earliest_start(512, d(90), t(0)), t(0));
        assert_eq!(p.earliest_start(512, d(150), t(0)), t(200));
    }

    #[test]
    fn partition_place_earliest_round_trip() {
        let mut p = small_bgp(&[(0, 8, t(500))]);
        let (start, tok) = p.place_earliest(2048, d(60), t(0)).unwrap();
        assert_eq!(start, t(500));
        p.rollback(tok);
        assert_eq!(p.commitment_count(), 1);
    }

    #[test]
    fn partition_oversized_request_is_rejected() {
        let mut p = small_bgp(&[]);
        assert!(!p.can_place_at(4097, t(0), d(10)));
        assert_eq!(p.earliest_start(4097, d(10), t(0)), SimTime::MAX);
        assert!(p.commit_at(4097, t(0), d(10)).is_none());
        assert!(p.place_earliest(4097, d(10), t(0)).is_none());
    }

    #[test]
    fn power_of_two_helper() {
        assert_eq!(prev_power_of_two(80), 64);
        assert_eq!(prev_power_of_two(64), 64);
        assert_eq!(prev_power_of_two(1), 1);
    }

    #[test]
    fn intrepid_geometry_at_both_granularities() {
        let p = PartitionPlan::new(t(0), 80, 512, &[]);
        assert_eq!(p.total_nodes(), 40_960);
        assert_eq!(p.rounded_size(40_960), 40_960);
        assert_eq!(p.rounded_size(32_769), 40_960);
        assert!(p.can_place_at(40_960, t(0), d(10)));

        // Sub-midplane granularity: 640 units of 64 nodes.
        let p = PartitionPlan::new(t(0), 640, 64, &[]);
        assert_eq!(p.total_nodes(), 40_960);
        assert_eq!(p.rounded_size(64), 64);
        assert_eq!(p.rounded_size(65), 128);
        assert!(p.can_place_at(40_960, t(0), d(10)));
    }
}
