//! Blue Gene/P-style partitioned machine.
//!
//! Intrepid (ANL's BG/P, the paper's testbed) schedules jobs onto
//! *partitions*: contiguous groups of 512-node midplanes wired into a
//! torus. We model the machine as a line of midplane units on which a job
//! occupies an **aligned power-of-two run of units** (a buddy-allocator
//! discipline), or the full machine for requests above the largest
//! power-of-two block. This reproduces the property the paper's Loss of
//! Capacity metric depends on: idle nodes can be plentiful while no free
//! partition of the required shape exists.
//!
//! Relative to real BG/P wiring this is a simplification (no 3-D torus
//! dimensions, no wiring conflicts between pass-through partitions), but
//! alignment + contiguity is what produces external fragmentation, and
//! that is the behaviour the paper's experiments exercise. Requests are
//! rounded up to the next partition size exactly as Cobalt does on the
//! real machine (a 700-node job receives a 1024-node partition).

use std::collections::BTreeMap;

use amjs_sim::{SimTime, Snapshot};

use crate::mask::{UnitMask, MAX_UNITS};
use crate::plan::PartitionPlan;
use crate::{AllocationId, DrainOutcome, Nodes, PlacementHint, Platform};

/// A partitioned Blue Gene/P-style machine.
#[derive(Clone, Debug)]
pub struct BgpCluster {
    units: u16,
    nodes_per_unit: Nodes,
    max_block: u16,
    /// Bit i set = unit i busy.
    busy: UnitMask,
    /// Bit i set = unit i out of service (failed, not yet repaired).
    /// Disjoint from `busy`: an in-use unit drains first.
    down: UnitMask,
    /// Bit i set = unit i failed while inside a live block; it moves to
    /// `down` when that block releases. Always a subset of `busy`.
    draining: UnitMask,
    next_id: u64,
    live: BTreeMap<AllocationId, Block>,
}

/// A live allocation's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// First unit of the partition.
    pub unit_start: u16,
    /// Number of units in the partition.
    pub unit_len: u16,
}

impl BgpCluster {
    /// A machine of `units` midplanes with `nodes_per_unit` nodes each.
    ///
    /// # Panics
    /// Panics if `units` is 0 or exceeds 128, or `nodes_per_unit` is 0.
    pub fn new(units: u16, nodes_per_unit: Nodes) -> Self {
        assert!(
            units >= 1 && (units as usize) <= MAX_UNITS,
            "1..={MAX_UNITS} units supported"
        );
        assert!(nodes_per_unit >= 1);
        BgpCluster {
            units,
            nodes_per_unit,
            max_block: prev_power_of_two(units),
            busy: UnitMask::empty(),
            down: UnitMask::empty(),
            draining: UnitMask::empty(),
            next_id: 0,
            live: BTreeMap::new(),
        }
    }

    /// Intrepid's geometry: 80 midplanes × 512 nodes = 40,960 nodes
    /// (40 racks × 2 midplanes).
    pub fn intrepid() -> Self {
        BgpCluster::new(80, 512)
    }

    /// Intrepid at sub-midplane granularity: 640 units of 64 nodes —
    /// the finest partition size BG/P exposes. Jobs down to 64 nodes
    /// allocate exactly; everything still lands on aligned
    /// power-of-two blocks.
    pub fn intrepid_fine() -> Self {
        BgpCluster::new(640, 64)
    }

    /// A 1/10th-scale Intrepid (8 midplanes, 4096 nodes) for fast tests.
    pub fn intrepid_rack_row() -> Self {
        BgpCluster::new(8, 512)
    }

    /// Unit length a request rounds to; `None` if it exceeds the machine.
    fn rounded_units(&self, nodes: Nodes) -> Option<u16> {
        let req = nodes.max(1).div_ceil(self.nodes_per_unit);
        if req > self.units as u32 {
            return None;
        }
        let k = (req as u16).next_power_of_two();
        if k > self.max_block {
            Some(self.units)
        } else {
            Some(k)
        }
    }

    /// Units unusable for new allocations: busy or out of service.
    fn unusable_mask(&self) -> UnitMask {
        let mut mask = self.busy;
        mask.or_with(&self.down);
        mask
    }

    /// Lowest-index aligned block of `k` units clear under `mask`.
    fn find_block_in(&self, k: u16, mask: &UnitMask) -> Option<u16> {
        if k == self.units {
            // Also covers the non-power-of-two full-machine rounding.
            return mask.is_empty().then_some(0);
        }
        mask.first_clear_aligned_block(k, self.units)
    }

    /// Lowest-index aligned free block of `k` units right now.
    fn find_free_block(&self, k: u16) -> Option<u16> {
        self.find_block_in(k, &self.unusable_mask())
    }

    /// The midplane unit containing node index `node`.
    fn unit_of(&self, node: Nodes) -> u16 {
        assert!(node < self.total_nodes(), "node index out of range");
        (node / self.nodes_per_unit) as u16
    }

    /// Geometry of a live allocation.
    pub fn block_of(&self, id: AllocationId) -> Option<Block> {
        self.live.get(&id).copied()
    }

    /// Number of midplane units in the machine.
    pub fn units(&self) -> u16 {
        self.units
    }

    /// Nodes per midplane unit.
    pub fn nodes_per_unit(&self) -> Nodes {
        self.nodes_per_unit
    }

    /// Units currently out of service (failed and not yet repaired).
    /// Draining units are not included — their capacity is still in
    /// service until the owning block releases.
    pub fn down_units(&self) -> UnitMask {
        self.down
    }

    /// Test-only fault seeding for the invariant oracle: forge a second
    /// live allocation over the first live block's units *without*
    /// touching the busy mask — exactly the double-allocation corruption
    /// [`Platform::check_consistency`] exists to catch. Returns the
    /// forged id, or `None` on a machine with no live allocation.
    #[doc(hidden)]
    pub fn debug_corrupt_double_allocation(&mut self) -> Option<AllocationId> {
        let block = *self.live.values().next()?;
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, block);
        Some(id)
    }
}

impl Platform for BgpCluster {
    type Plan = PartitionPlan;

    fn name(&self) -> &'static str {
        "bgp"
    }

    fn total_nodes(&self) -> Nodes {
        self.units as Nodes * self.nodes_per_unit
    }

    fn idle_nodes(&self) -> Nodes {
        (self.units as u32 - self.busy.count_ones() - self.down.count_ones()) * self.nodes_per_unit
    }

    fn min_allocation(&self) -> Nodes {
        self.nodes_per_unit
    }

    fn rounded_size(&self, nodes: Nodes) -> Nodes {
        match self.rounded_units(nodes) {
            Some(k) => k as Nodes * self.nodes_per_unit,
            None => Nodes::MAX,
        }
    }

    fn can_allocate(&self, nodes: Nodes) -> bool {
        match self.rounded_units(nodes) {
            Some(k) => self.find_free_block(k).is_some(),
            None => false,
        }
    }

    fn allocate(&mut self, nodes: Nodes) -> Option<AllocationId> {
        let k = self.rounded_units(nodes)?;
        let start = self.find_free_block(k)?;
        self.busy.set_range(start, k);
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.live.insert(
            id,
            Block {
                unit_start: start,
                unit_len: k,
            },
        );
        Some(id)
    }

    fn allocate_hinted(&mut self, nodes: Nodes, hint: PlacementHint) -> Option<AllocationId> {
        if hint.unit_len == 0 {
            return self.allocate(nodes);
        }
        let k = self.rounded_units(nodes)?;
        if k != hint.unit_len || hint.unit_start + k > self.units {
            return None; // hint does not match this request's shape
        }
        if !self.unusable_mask().range_is_clear(hint.unit_start, k) {
            return None; // hinted block is (partially) busy or down
        }
        self.busy.set_range(hint.unit_start, k);
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.live.insert(
            id,
            Block {
                unit_start: hint.unit_start,
                unit_len: k,
            },
        );
        Some(id)
    }

    fn release(&mut self, id: AllocationId) -> Nodes {
        let block = self
            .live
            .remove(&id)
            .unwrap_or_else(|| panic!("release of unknown allocation {id:?}"));
        debug_assert!(
            self.busy.range_is_set(block.unit_start, block.unit_len),
            "released units were not busy"
        );
        self.busy.clear_range(block.unit_start, block.unit_len);
        // Draining units of the block leave service now (one word-level
        // intersect instead of a per-unit sweep).
        let leaving = self
            .draining
            .intersection(&UnitMask::block(block.unit_start, block.unit_len));
        if !leaving.is_empty() {
            self.draining.and_not_with(&leaving);
            self.down.or_with(&leaving);
        }
        block.unit_len as Nodes * self.nodes_per_unit
    }

    fn allocation_size(&self, id: AllocationId) -> Option<Nodes> {
        self.live
            .get(&id)
            .map(|b| b.unit_len as Nodes * self.nodes_per_unit)
    }

    fn active_allocations(&self) -> Vec<AllocationId> {
        self.live.keys().copied().collect()
    }

    fn plan(&self, now: SimTime, release_time: &dyn Fn(AllocationId) -> SimTime) -> PartitionPlan {
        let running: Vec<(u16, u16, SimTime)> = self
            .live
            .iter()
            .map(|(&id, b)| (b.unit_start, b.unit_len, release_time(id)))
            .collect();
        PartitionPlan::new(now, self.units, self.nodes_per_unit, &running).with_down(self.down)
    }

    fn available_nodes(&self) -> Nodes {
        (self.units as u32 - self.down.count_ones()) * self.nodes_per_unit
    }

    fn mark_down(&mut self, node: Nodes) -> DrainOutcome {
        let u = self.unit_of(node);
        if self.down.range_is_set(u, 1) || self.draining.range_is_set(u, 1) {
            return DrainOutcome::AlreadyDown;
        }
        if self.busy.range_is_set(u, 1) {
            let id = self
                .allocation_containing(node)
                .expect("busy unit must belong to a live block");
            self.draining.set_range(u, 1);
            return DrainOutcome::Draining(id);
        }
        self.down.set_range(u, 1);
        DrainOutcome::Down
    }

    fn mark_up(&mut self, node: Nodes) {
        let u = self.unit_of(node);
        // Clears a completed outage or cancels a pending drain; no-op
        // on an in-service unit.
        self.down.clear_range(u, 1);
        self.draining.clear_range(u, 1);
    }

    fn allocation_containing(&self, node: Nodes) -> Option<AllocationId> {
        let u = self.unit_of(node);
        self.live
            .iter()
            .find(|(_, b)| b.unit_start <= u && u < b.unit_start + b.unit_len)
            .map(|(&id, _)| id)
    }

    fn could_ever_allocate(&self, nodes: Nodes) -> bool {
        match self.rounded_units(nodes) {
            Some(k) => self.find_block_in(k, &self.down).is_some(),
            None => false,
        }
    }

    fn check_consistency(&self) -> Result<(), String> {
        let mut owned = UnitMask::empty();
        for (&id, b) in &self.live {
            if b.unit_len == 0 || b.unit_start + b.unit_len > self.units {
                return Err(format!(
                    "allocation {id:?} out of bounds: units {}..{} on a {}-unit machine",
                    b.unit_start,
                    b.unit_start + b.unit_len,
                    self.units
                ));
            }
            let block = UnitMask::block(b.unit_start, b.unit_len);
            if owned.intersects(&block) {
                return Err(format!(
                    "double allocation: {id:?} overlaps another live block at units {}..{}",
                    b.unit_start,
                    b.unit_start + b.unit_len
                ));
            }
            owned.or_with(&block);
        }
        if owned != self.busy {
            return Err(format!(
                "busy mask disagrees with live blocks: {} busy units vs {} owned",
                self.busy.count_ones(),
                owned.count_ones()
            ));
        }
        if !self.draining.is_subset_of(&self.busy) {
            let mut stray = self.draining;
            stray.and_not_with(&self.busy);
            return Err(format!(
                "{} unit(s) draining but not busy",
                stray.count_ones()
            ));
        }
        if self.down.intersects(&self.busy) {
            return Err("down mask intersects busy units".to_string());
        }
        if self.down.intersects(&self.draining) {
            return Err("down mask intersects draining units".to_string());
        }
        Ok(())
    }

    fn allocation_intersects_down(&self, id: AllocationId) -> bool {
        let Some(b) = self.live.get(&id) else {
            return false;
        };
        let block = UnitMask::block(b.unit_start, b.unit_len);
        self.down.intersects(&block) || self.draining.intersects(&block)
    }
}

impl Snapshot for Block {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u16(self.unit_start);
        w.put_u16(self.unit_len);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        Ok(Block {
            unit_start: r.get_u16()?,
            unit_len: r.get_u16()?,
        })
    }
}

impl Snapshot for BgpCluster {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u16(self.units);
        w.put_u32(self.nodes_per_unit);
        w.put_u16(self.max_block);
        self.busy.encode(w);
        self.down.encode(w);
        self.draining.encode(w);
        w.put_u64(self.next_id);
        // BTreeMap iterates in id order: canonical encoding.
        w.put_usize(self.live.len());
        for (id, block) in &self.live {
            id.encode(w);
            block.encode(w);
        }
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        let units = r.get_u16()?;
        let nodes_per_unit = r.get_u32()?;
        let max_block = r.get_u16()?;
        let busy = UnitMask::decode(r)?;
        let down = UnitMask::decode(r)?;
        let draining = UnitMask::decode(r)?;
        let next_id = r.get_u64()?;
        let mut live = BTreeMap::new();
        for _ in 0..r.get_usize()? {
            let id = AllocationId::decode(r)?;
            live.insert(id, Block::decode(r)?);
        }
        if units == 0 || units as usize > MAX_UNITS || nodes_per_unit == 0 {
            return Err(amjs_sim::SnapError::Malformed(format!(
                "impossible BGP geometry: {units} units x {nodes_per_unit} nodes"
            )));
        }
        let c = BgpCluster {
            units,
            nodes_per_unit,
            max_block,
            busy,
            down,
            draining,
            next_id,
            live,
        };
        c.check_consistency()
            .map_err(amjs_sim::SnapError::Malformed)?;
        Ok(c)
    }
}

/// Largest power of two `<= n` (n >= 1).
fn prev_power_of_two(n: u16) -> u16 {
    let npot = n.next_power_of_two();
    if npot == n {
        n
    } else {
        npot / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip_preserves_masks_and_blocks() {
        use amjs_sim::{SnapReader, SnapWriter};
        let mut c = BgpCluster::intrepid_rack_row();
        let a = c.allocate(512).unwrap();
        let _b = c.allocate(1024).unwrap();
        c.mark_down(7 * 512); // idle midplane down
        c.mark_down(0); // drains inside `a`
        c.release(a);

        let mut w = SnapWriter::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored = BgpCluster::decode(&mut SnapReader::new(&bytes)).unwrap();
        restored.check_consistency().unwrap();
        assert_eq!(restored.total_nodes(), c.total_nodes());
        assert_eq!(restored.idle_nodes(), c.idle_nodes());
        assert_eq!(restored.available_nodes(), c.available_nodes());
        assert_eq!(restored.active_allocations(), c.active_allocations());
        // Identical placement decisions after restore.
        assert_eq!(restored.allocate(512), c.allocate(512));
        assert_eq!(
            restored
                .active_allocations()
                .last()
                .and_then(|&id| restored.block_of(id)),
            c.active_allocations().last().and_then(|&id| c.block_of(id)),
        );
    }

    #[test]
    fn intrepid_dimensions() {
        let c = BgpCluster::intrepid();
        assert_eq!(c.total_nodes(), 40_960);
        assert_eq!(c.min_allocation(), 512);
        assert_eq!(c.rounded_size(1), 512);
        assert_eq!(c.rounded_size(2048), 2048);
        assert_eq!(c.rounded_size(2049), 4096);
        // Above the largest power-of-two block (32K) → full machine.
        assert_eq!(c.rounded_size(32_769), 40_960);
        assert_eq!(c.rounded_size(40_960), 40_960);
        assert_eq!(c.rounded_size(40_961), Nodes::MAX);
        assert!(!c.can_allocate(40_961));
    }

    #[test]
    fn buddy_alignment_is_enforced() {
        let mut c = BgpCluster::new(8, 512);
        // Take unit 0 (one midplane).
        let a = c.allocate(512).unwrap();
        assert_eq!(
            c.block_of(a).unwrap(),
            Block {
                unit_start: 0,
                unit_len: 1
            }
        );
        // A 2-unit job must go to the aligned pair {2,3}, not {1,2}.
        let b = c.allocate(1024).unwrap();
        assert_eq!(
            c.block_of(b).unwrap(),
            Block {
                unit_start: 2,
                unit_len: 2
            }
        );
        // A 4-unit job takes the upper half.
        let d = c.allocate(2048).unwrap();
        assert_eq!(
            c.block_of(d).unwrap(),
            Block {
                unit_start: 4,
                unit_len: 4
            }
        );
        // Only unit 1 is free now: capacity 512 idle.
        assert_eq!(c.idle_nodes(), 512);
        assert!(c.can_allocate(512));
        assert!(!c.can_allocate(1024));
    }

    #[test]
    fn fragmentation_blocks_despite_capacity() {
        let mut c = BgpCluster::new(8, 512);
        // Occupy units 0 and 2: 6 units (3072 nodes) idle, but no free
        // aligned 4-unit block in the lower half, upper half is free.
        let _a = c.allocate(512).unwrap(); // unit 0
        let _b = c.allocate(512).unwrap(); // unit 1
        let _c2 = c.allocate(512).unwrap(); // unit 2
        c.release(_b);
        assert_eq!(c.idle_nodes(), 6 * 512);
        assert!(c.can_allocate(2048)); // units 4..8 are free
        let big = c.allocate(2048).unwrap();
        assert_eq!(c.block_of(big).unwrap().unit_start, 4);
        // Only units 1 and 3 remain idle: 1024 nodes.
        assert_eq!(c.idle_nodes(), 2 * 512);
        // 1024 idle nodes but no aligned pair free → fragmentation.
        assert!(!c.can_allocate(1024));
        assert!(c.can_allocate(512));
    }

    #[test]
    fn full_machine_partition() {
        let mut c = BgpCluster::intrepid();
        let id = c.allocate(40_960).unwrap();
        assert_eq!(c.idle_nodes(), 0);
        assert_eq!(c.allocation_size(id), Some(40_960));
        assert!(!c.can_allocate(512));
        assert_eq!(c.release(id), 40_960);
        assert_eq!(c.idle_nodes(), 40_960);
    }

    #[test]
    fn release_restores_exactly() {
        let mut c = BgpCluster::new(16, 512);
        let ids: Vec<_> = (0..4).map(|_| c.allocate(1024).unwrap()).collect();
        assert_eq!(c.idle_nodes(), 8 * 512);
        for id in ids {
            c.release(id);
        }
        assert_eq!(c.idle_nodes(), 16 * 512);
        assert!(c.busy.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown allocation")]
    fn double_release_panics() {
        let mut c = BgpCluster::new(8, 512);
        let a = c.allocate(512).unwrap();
        c.release(a);
        c.release(a);
    }

    #[test]
    fn plan_mirrors_live_geometry() {
        use crate::plan::Plan;
        use amjs_sim::SimDuration;

        let mut c = BgpCluster::new(8, 512);
        let a = c.allocate(2048).unwrap(); // units 0..4
        let now = SimTime::from_secs(0);
        let plan = c.plan(now, &|_| SimTime::from_secs(100));
        // Another 4-unit job fits now (upper half)...
        assert!(plan.can_place_at(2048, now, SimDuration::from_secs(10)));
        // ...but the full machine must wait for the release.
        assert_eq!(
            plan.earliest_start(4096, SimDuration::from_secs(10), now),
            SimTime::from_secs(100)
        );
        c.release(a);
    }

    #[test]
    fn non_power_of_two_machine_has_full_partition() {
        // 80 units: an 80-unit "full" request works when empty.
        let mut c = BgpCluster::intrepid();
        let small = c.allocate(512).unwrap();
        assert!(!c.can_allocate(40_960));
        c.release(small);
        assert!(c.can_allocate(40_960));
    }

    #[test]
    #[should_panic(expected = "units supported")]
    fn too_many_units_panics() {
        let _ = BgpCluster::new(1025, 512);
    }

    #[test]
    fn failed_free_midplane_goes_down_immediately() {
        use crate::DrainOutcome;
        let mut c = BgpCluster::new(8, 512);
        // Node 3000 is in unit 5 (free).
        assert_eq!(c.mark_down(3000), DrainOutcome::Down);
        assert_eq!(c.available_nodes(), 7 * 512);
        assert_eq!(c.idle_nodes(), 7 * 512);
        // The upper half (units 4..8) now contains a down unit: a
        // 4-unit job must land on the lower half.
        let big = c.allocate(2048).unwrap();
        assert_eq!(c.block_of(big).unwrap().unit_start, 0);
        assert!(!c.can_allocate(2048));
        // Second failure on the same unit is absorbed.
        assert_eq!(c.mark_down(3000), DrainOutcome::AlreadyDown);
        c.mark_up(3000);
        assert_eq!(c.available_nodes(), 8 * 512);
        assert!(c.can_allocate(2048));
    }

    #[test]
    fn failed_busy_midplane_drains_on_release() {
        use crate::DrainOutcome;
        let mut c = BgpCluster::new(8, 512);
        let a = c.allocate(1024).unwrap(); // units 0..2
        assert_eq!(c.allocation_containing(600), Some(a));
        assert_eq!(c.mark_down(600), DrainOutcome::Draining(a));
        // Still in service while the block runs.
        assert_eq!(c.available_nodes(), 8 * 512);
        // Release takes unit 1 out of service; unit 0 goes idle.
        c.release(a);
        assert_eq!(c.available_nodes(), 7 * 512);
        assert_eq!(c.idle_nodes(), 7 * 512);
        // The pair {0,1} is no longer allocatable; {2,3} is.
        let b = c.allocate(1024).unwrap();
        assert_eq!(c.block_of(b).unwrap().unit_start, 2);
        c.mark_up(600);
        assert_eq!(c.available_nodes(), 8 * 512);
    }

    #[test]
    fn repair_before_release_cancels_drain() {
        let mut c = BgpCluster::new(8, 512);
        let a = c.allocate(512).unwrap();
        c.mark_down(100); // unit 0, busy → draining
        c.mark_up(100); // repaired before the job ended
        c.release(a);
        assert_eq!(c.available_nodes(), 8 * 512);
        assert_eq!(c.idle_nodes(), 8 * 512);
    }

    #[test]
    fn full_machine_needs_every_unit_in_service() {
        let mut c = BgpCluster::new(8, 512);
        assert!(c.could_ever_allocate(4096));
        c.mark_down(0);
        assert!(!c.can_allocate(4096));
        assert!(!c.could_ever_allocate(4096));
        assert!(c.could_ever_allocate(2048)); // upper half intact
        c.mark_up(0);
        assert!(c.could_ever_allocate(4096));
    }

    #[test]
    fn degraded_plan_never_promises_down_units() {
        use crate::plan::Plan;
        use amjs_sim::SimDuration;
        let mut c = BgpCluster::new(8, 512);
        c.mark_down(6 * 512); // unit 6 down
        let plan = c.plan(SimTime::ZERO, &|_| SimTime::ZERO);
        // A 2-unit job cannot use pair {6,7}; {0,1} is fine.
        assert!(plan.can_place_at(1024, SimTime::ZERO, SimDuration::from_secs(10)));
        // The full machine can never start while a unit is down.
        assert_eq!(
            plan.earliest_start(4096, SimDuration::from_secs(10), SimTime::ZERO),
            SimTime::MAX
        );
    }

    #[test]
    fn consistency_check_accepts_lifecycle_states() {
        let mut c = BgpCluster::new(8, 512);
        c.check_consistency().unwrap();
        let a = c.allocate(1024).unwrap();
        let _b = c.allocate(512).unwrap();
        c.check_consistency().unwrap();
        c.mark_down(7 * 512); // free unit → down
        c.mark_down(600); // unit 1 inside `a` → draining
        c.check_consistency().unwrap();
        assert!(c.allocation_intersects_down(a));
        assert!(!c.allocation_intersects_down(_b));
        c.release(a); // draining unit leaves service
        c.check_consistency().unwrap();
        assert_eq!(c.down_units().count_ones(), 2);
    }

    #[test]
    fn consistency_check_catches_seeded_double_allocation() {
        let mut c = BgpCluster::new(8, 512);
        let _a = c.allocate(1024).unwrap();
        c.check_consistency().unwrap();
        let forged = c.debug_corrupt_double_allocation().unwrap();
        let err = c.check_consistency().unwrap_err();
        assert!(err.contains("double allocation"), "err={err}");
        assert!(err.contains(&format!("{forged:?}")), "err={err}");
    }

    #[test]
    fn consistency_check_catches_busy_mask_drift() {
        let mut c = BgpCluster::new(8, 512);
        let a = c.allocate(512).unwrap();
        c.busy.clear_range(c.block_of(a).unwrap().unit_start, 1);
        let err = c.check_consistency().unwrap_err();
        assert!(err.contains("busy mask"), "err={err}");
    }

    #[test]
    fn fine_grained_intrepid_allocates_small_jobs() {
        let mut c = BgpCluster::intrepid_fine();
        assert_eq!(c.total_nodes(), 40_960);
        assert_eq!(c.min_allocation(), 64);
        // A 64-node job takes exactly one unit; a 100-node job rounds
        // to 128.
        let small = c.allocate(64).unwrap();
        assert_eq!(c.allocation_size(small), Some(64));
        let mid = c.allocate(100).unwrap();
        assert_eq!(c.allocation_size(mid), Some(128));
        // Alignment holds at this granularity too.
        let b = c.block_of(mid).unwrap();
        assert_eq!(b.unit_start % b.unit_len, 0);
        // Largest power-of-two block is 512 units (32,768 nodes); above
        // that, the full machine.
        assert_eq!(c.rounded_size(32_768), 32_768);
        assert_eq!(c.rounded_size(32_769), 40_960);
    }
}
