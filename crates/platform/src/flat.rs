//! An idealized cluster of interchangeable nodes.
//!
//! Any request `n <= idle_nodes()` succeeds — there is no geometry, so the
//! only Loss of Capacity a flat machine can exhibit comes from backfill
//! admission (a job that fits is held back to protect a reservation), not
//! from fragmentation. Comparing LoC here against [`crate::BgpCluster`]
//! isolates the fragmentation contribution (see the `ablation_platform`
//! experiment).

use std::collections::BTreeMap;

use amjs_sim::SimTime;

use crate::plan::FlatPlan;
use crate::{AllocationId, DrainOutcome, Nodes, PlacementHint, Platform};

/// A pool of `total` interchangeable nodes.
#[derive(Clone, Debug)]
pub struct FlatCluster {
    total: Nodes,
    idle: Nodes,
    /// Nodes out of service (failed, not yet repaired). Never counted
    /// in `idle` and never allocated.
    down: Nodes,
    /// Per-allocation count of nodes that leave service when the
    /// allocation releases (failed while in use).
    draining: BTreeMap<AllocationId, Nodes>,
    next_id: u64,
    // BTreeMap keeps `active_allocations` deterministic in id order.
    live: BTreeMap<AllocationId, Nodes>,
}

impl FlatCluster {
    /// A new, fully idle cluster.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: Nodes) -> Self {
        assert!(total > 0, "a cluster needs at least one node");
        FlatCluster {
            total,
            idle: total,
            down: 0,
            draining: BTreeMap::new(),
            next_id: 0,
            live: BTreeMap::new(),
        }
    }
}

impl Platform for FlatCluster {
    type Plan = FlatPlan;

    fn name(&self) -> &'static str {
        "flat"
    }

    fn total_nodes(&self) -> Nodes {
        self.total
    }

    fn idle_nodes(&self) -> Nodes {
        self.idle
    }

    fn min_allocation(&self) -> Nodes {
        1
    }

    fn rounded_size(&self, nodes: Nodes) -> Nodes {
        nodes.max(1)
    }

    fn can_allocate(&self, nodes: Nodes) -> bool {
        self.rounded_size(nodes) <= self.idle
    }

    fn allocate(&mut self, nodes: Nodes) -> Option<AllocationId> {
        let nodes = self.rounded_size(nodes);
        if nodes > self.idle {
            return None;
        }
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.idle -= nodes;
        self.live.insert(id, nodes);
        Some(id)
    }

    fn allocate_hinted(&mut self, nodes: Nodes, _hint: PlacementHint) -> Option<AllocationId> {
        // Flat machines have no geometry; the hint carries no information.
        self.allocate(nodes)
    }

    fn release(&mut self, id: AllocationId) -> Nodes {
        let nodes = self
            .live
            .remove(&id)
            .unwrap_or_else(|| panic!("release of unknown allocation {id:?}"));
        // Draining nodes leave service now instead of going idle.
        let drained = self.draining.remove(&id).unwrap_or(0);
        self.idle += nodes - drained;
        self.down += drained;
        nodes
    }

    fn allocation_size(&self, id: AllocationId) -> Option<Nodes> {
        self.live.get(&id).copied()
    }

    fn active_allocations(&self) -> Vec<AllocationId> {
        self.live.keys().copied().collect()
    }

    fn plan(&self, now: SimTime, release_time: &dyn Fn(AllocationId) -> SimTime) -> FlatPlan {
        let running: Vec<(Nodes, SimTime)> = self
            .live
            .iter()
            .map(|(&id, &nodes)| (nodes, release_time(id)))
            .collect();
        FlatPlan::new(now, self.total, &running).with_down(self.down)
    }

    fn available_nodes(&self) -> Nodes {
        self.total - self.down
    }

    fn mark_down(&mut self, node: Nodes) -> DrainOutcome {
        assert!(node < self.total, "node index out of range");
        // Index fiction for a geometry-free pool: live allocations
        // occupy consecutive index ranges from 0 in id order, idle
        // nodes follow, out-of-service nodes sit at the top.
        if node >= self.total - self.down {
            return DrainOutcome::AlreadyDown;
        }
        if let Some(id) = self.allocation_containing(node) {
            let size = self.live[&id];
            let count = self.draining.entry(id).or_insert(0);
            if *count >= size {
                return DrainOutcome::AlreadyDown;
            }
            *count += 1;
            return DrainOutcome::Draining(id);
        }
        self.idle -= 1;
        self.down += 1;
        DrainOutcome::Down
    }

    fn mark_up(&mut self, node: Nodes) {
        assert!(node < self.total, "node index out of range");
        if self.down > 0 {
            self.down -= 1;
            self.idle += 1;
        } else if let Some((&id, _)) = self.draining.iter().next() {
            // Repair arrived before the drain completed: cancel it.
            let count = self.draining.get_mut(&id).unwrap();
            *count -= 1;
            if *count == 0 {
                self.draining.remove(&id);
            }
        }
    }

    fn allocation_containing(&self, node: Nodes) -> Option<AllocationId> {
        let mut cum = 0;
        for (&id, &size) in &self.live {
            cum += size;
            if node < cum {
                return Some(id);
            }
        }
        None
    }

    fn could_ever_allocate(&self, nodes: Nodes) -> bool {
        self.rounded_size(nodes) <= self.total - self.down
    }

    fn check_consistency(&self) -> Result<(), String> {
        let allocated: Nodes = self.live.values().sum();
        if allocated + self.idle + self.down != self.total {
            return Err(format!(
                "node conservation broken: {} allocated + {} idle + {} down != {} total",
                allocated, self.idle, self.down, self.total
            ));
        }
        for (&id, &count) in &self.draining {
            match self.live.get(&id) {
                None => return Err(format!("draining entry for dead allocation {id:?}")),
                Some(&size) if count > size => {
                    return Err(format!("allocation {id:?} drains {count} of {size} nodes"));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    fn allocation_intersects_down(&self, id: AllocationId) -> bool {
        // No geometry: an allocation touches down capacity exactly when
        // it has a pending drain.
        self.draining.contains_key(&id)
    }
}

impl amjs_sim::Snapshot for FlatCluster {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u32(self.total);
        w.put_u32(self.idle);
        w.put_u32(self.down);
        w.put_u64(self.next_id);
        // BTreeMaps iterate in key order, so the encoding is canonical.
        w.put_usize(self.draining.len());
        for (id, nodes) in &self.draining {
            id.encode(w);
            w.put_u32(*nodes);
        }
        w.put_usize(self.live.len());
        for (id, nodes) in &self.live {
            id.encode(w);
            w.put_u32(*nodes);
        }
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        let total = r.get_u32()?;
        let idle = r.get_u32()?;
        let down = r.get_u32()?;
        let next_id = r.get_u64()?;
        let mut draining = BTreeMap::new();
        for _ in 0..r.get_usize()? {
            let id = AllocationId::decode(r)?;
            draining.insert(id, r.get_u32()?);
        }
        let mut live = BTreeMap::new();
        for _ in 0..r.get_usize()? {
            let id = AllocationId::decode(r)?;
            live.insert(id, r.get_u32()?);
        }
        let c = FlatCluster {
            total,
            idle,
            down,
            draining,
            next_id,
            live,
        };
        c.check_consistency()
            .map_err(amjs_sim::SnapError::Malformed)?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use amjs_sim::SimDuration;

    #[test]
    fn allocate_until_full_then_fail() {
        let mut c = FlatCluster::new(100);
        let a = c.allocate(60).unwrap();
        assert_eq!(c.idle_nodes(), 40);
        assert!(c.can_allocate(40));
        assert!(!c.can_allocate(41));
        assert!(c.allocate(41).is_none());
        let b = c.allocate(40).unwrap();
        assert_eq!(c.idle_nodes(), 0);
        c.release(a);
        assert_eq!(c.idle_nodes(), 60);
        c.release(b);
        assert_eq!(c.idle_nodes(), 100);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut c = FlatCluster::new(100);
        let a = c.allocate(10).unwrap();
        let b = c.allocate(10).unwrap();
        assert_ne!(a, b);
        assert_eq!(c.active_allocations(), vec![a, b]);
        c.release(a);
        // Ids are never reused.
        let d = c.allocate(10).unwrap();
        assert!(d > b);
    }

    #[test]
    #[should_panic(expected = "unknown allocation")]
    fn double_release_panics() {
        let mut c = FlatCluster::new(10);
        let a = c.allocate(5).unwrap();
        c.release(a);
        c.release(a);
    }

    #[test]
    fn zero_node_request_rounds_to_one() {
        let mut c = FlatCluster::new(10);
        let a = c.allocate(0).unwrap();
        assert_eq!(c.allocation_size(a), Some(1));
        assert_eq!(c.idle_nodes(), 9);
    }

    #[test]
    fn plan_reflects_live_state() {
        let mut c = FlatCluster::new(100);
        let a = c.allocate(70).unwrap();
        let now = SimTime::from_secs(10);
        let plan = c.plan(now, &|id| {
            assert_eq!(id, a);
            SimTime::from_secs(50)
        });
        assert_eq!(plan.now(), now);
        assert_eq!(
            plan.earliest_start(50, SimDuration::from_secs(5), now),
            SimTime::from_secs(50)
        );
        assert_eq!(plan.earliest_start(30, SimDuration::from_secs(5), now), now);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_total_panics() {
        let _ = FlatCluster::new(0);
    }

    #[test]
    fn idle_node_goes_down_immediately() {
        use crate::DrainOutcome;
        let mut c = FlatCluster::new(100);
        let _a = c.allocate(40).unwrap();
        // Node 90 is idle (live span is [0,40)).
        assert_eq!(c.mark_down(90), DrainOutcome::Down);
        assert_eq!(c.available_nodes(), 99);
        assert_eq!(c.idle_nodes(), 59);
        assert!(!c.can_allocate(60));
        assert!(c.can_allocate(59));
        c.mark_up(90);
        assert_eq!(c.available_nodes(), 100);
        assert_eq!(c.idle_nodes(), 60);
    }

    #[test]
    fn busy_node_drains_until_release() {
        use crate::DrainOutcome;
        let mut c = FlatCluster::new(100);
        let a = c.allocate(40).unwrap();
        assert_eq!(c.allocation_containing(10), Some(a));
        assert_eq!(c.mark_down(10), DrainOutcome::Draining(a));
        // Still in service while the job runs.
        assert_eq!(c.available_nodes(), 100);
        assert_eq!(c.idle_nodes(), 60);
        // Release completes the drain: 39 nodes go idle, 1 goes down.
        assert_eq!(c.release(a), 40);
        assert_eq!(c.available_nodes(), 99);
        assert_eq!(c.idle_nodes(), 99);
        c.mark_up(10);
        assert_eq!(c.available_nodes(), 100);
    }

    #[test]
    fn repair_before_release_cancels_drain() {
        let mut c = FlatCluster::new(100);
        let a = c.allocate(40).unwrap();
        c.mark_down(10);
        c.mark_up(10);
        assert_eq!(c.release(a), 40);
        assert_eq!(c.available_nodes(), 100);
        assert_eq!(c.idle_nodes(), 100);
    }

    #[test]
    fn down_node_is_already_down() {
        use crate::DrainOutcome;
        let mut c = FlatCluster::new(10);
        assert_eq!(c.mark_down(9), DrainOutcome::Down);
        // The top index region is out of service now.
        assert_eq!(c.mark_down(9), DrainOutcome::AlreadyDown);
        assert_eq!(c.available_nodes(), 9);
    }

    #[test]
    fn consistency_check_tracks_the_lifecycle() {
        let mut c = FlatCluster::new(100);
        c.check_consistency().unwrap();
        let a = c.allocate(40).unwrap();
        c.mark_down(90); // idle node
        c.mark_down(10); // inside `a` → draining
        c.check_consistency().unwrap();
        assert!(c.allocation_intersects_down(a));
        c.release(a);
        c.check_consistency().unwrap();
        assert_eq!(c.available_nodes(), 98);
        // Hand-corrupt the books: conservation must trip.
        c.idle -= 1;
        let err = c.check_consistency().unwrap_err();
        assert!(err.contains("conservation"), "err={err}");
    }

    #[test]
    fn snapshot_round_trip_preserves_lifecycle_state() {
        use amjs_sim::{SnapReader, SnapWriter, Snapshot};
        let mut c = FlatCluster::new(100);
        let a = c.allocate(40).unwrap();
        let _b = c.allocate(20).unwrap();
        c.mark_down(90); // idle node down
        c.mark_down(10); // drains inside `a`
        c.release(a);

        let mut w = SnapWriter::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored = FlatCluster::decode(&mut SnapReader::new(&bytes)).unwrap();
        restored.check_consistency().unwrap();
        assert_eq!(restored.total_nodes(), c.total_nodes());
        assert_eq!(restored.idle_nodes(), c.idle_nodes());
        assert_eq!(restored.available_nodes(), c.available_nodes());
        assert_eq!(restored.active_allocations(), c.active_allocations());
        // Allocation ids continue where the original left off.
        assert_eq!(restored.allocate(5), c.allocate(5));
    }

    #[test]
    fn degraded_plan_never_promises_down_capacity() {
        use amjs_sim::SimDuration;
        let mut c = FlatCluster::new(100);
        c.mark_down(50);
        c.mark_down(51);
        let plan = c.plan(SimTime::ZERO, &|_| SimTime::ZERO);
        assert!(plan.can_place_at(98, SimTime::ZERO, SimDuration::from_secs(10)));
        assert!(!plan.can_place_at(99, SimTime::ZERO, SimDuration::from_secs(10)));
        assert_eq!(
            plan.earliest_start(99, SimDuration::from_secs(10), SimTime::ZERO),
            SimTime::MAX
        );
        assert!(c.could_ever_allocate(98));
        assert!(!c.could_ever_allocate(99));
    }
}
