//! A fixed-width bitmask over allocation units.
//!
//! The original implementation tracked unit occupancy in a `u128`,
//! capping machines at 128 units — enough for Intrepid at midplane
//! (512-node) granularity but not for sub-midplane (64-node) partitions
//! (640 units). [`UnitMask`] lifts the cap to [`MAX_UNITS`] with the
//! same operations: set/clear a contiguous block, test a block for
//! emptiness, and population count. All operations are branch-light
//! word loops; the common machines span 1–10 words.

/// Maximum units a machine may have (16 × 64).
pub const MAX_UNITS: usize = 1024;

const WORDS: usize = MAX_UNITS / 64;

/// Occupancy bitmask over up to [`MAX_UNITS`] units.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct UnitMask {
    words: [u64; WORDS],
}

impl std::fmt::Debug for UnitMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UnitMask[{} set]", self.count_ones())
    }
}

impl Default for UnitMask {
    fn default() -> Self {
        Self::empty()
    }
}

impl UnitMask {
    /// The all-clear mask.
    pub const fn empty() -> Self {
        UnitMask { words: [0; WORDS] }
    }

    /// A mask with `len` bits set starting at `start`.
    pub fn block(start: u16, len: u16) -> Self {
        let mut m = Self::empty();
        m.set_range(start, len);
        m
    }

    /// Set `len` bits starting at `start`.
    ///
    /// # Panics
    /// Panics if the range exceeds [`MAX_UNITS`].
    pub fn set_range(&mut self, start: u16, len: u16) {
        let (start, end) = range_bounds(start, len);
        if start == end {
            return;
        }
        let (first_word, last_word) = (start / 64, (end - 1) / 64);
        if first_word == last_word {
            self.words[first_word] |= word_mask(start % 64, end - start);
            return;
        }
        self.words[first_word] |= word_mask(start % 64, 64);
        for w in &mut self.words[first_word + 1..last_word] {
            *w = u64::MAX;
        }
        self.words[last_word] |= word_mask(0, end - last_word * 64);
    }

    /// Clear `len` bits starting at `start`.
    pub fn clear_range(&mut self, start: u16, len: u16) {
        let (start, end) = range_bounds(start, len);
        if start == end {
            return;
        }
        let (first_word, last_word) = (start / 64, (end - 1) / 64);
        if first_word == last_word {
            self.words[first_word] &= !word_mask(start % 64, end - start);
            return;
        }
        self.words[first_word] &= !word_mask(start % 64, 64);
        for w in &mut self.words[first_word + 1..last_word] {
            *w = 0;
        }
        self.words[last_word] &= !word_mask(0, end - last_word * 64);
    }

    /// True iff every bit in the block is clear.
    pub fn range_is_clear(&self, start: u16, len: u16) -> bool {
        if len == 0 {
            return true;
        }
        let (start, end) = range_bounds(start, len);
        // Word-at-a-time fast path.
        let (first_word, last_word) = (start / 64, (end - 1) / 64);
        if first_word == last_word {
            let mask = word_mask(start % 64, end - start);
            return self.words[first_word] & mask == 0;
        }
        let head = word_mask(start % 64, 64);
        if self.words[first_word] & head != 0 {
            return false;
        }
        for w in first_word + 1..last_word {
            if self.words[w] != 0 {
                return false;
            }
        }
        let tail = word_mask(0, end - last_word * 64);
        self.words[last_word] & tail == 0
    }

    /// True iff every bit in the range is set (debug checks).
    pub fn range_is_set(&self, start: u16, len: u16) -> bool {
        if len == 0 {
            return true;
        }
        let (start, end) = range_bounds(start, len);
        let (first_word, last_word) = (start / 64, (end - 1) / 64);
        if first_word == last_word {
            let mask = word_mask(start % 64, end - start);
            return self.words[first_word] & mask == mask;
        }
        let head = word_mask(start % 64, 64);
        if self.words[first_word] & head != head {
            return false;
        }
        if self.words[first_word + 1..last_word]
            .iter()
            .any(|&w| w != u64::MAX)
        {
            return false;
        }
        let tail = word_mask(0, end - last_word * 64);
        self.words[last_word] & tail == tail
    }

    /// True iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Bitwise OR with another mask, in place.
    pub fn or_with(&mut self, other: &UnitMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bitwise OR restricted to the first `words` 64-bit words — exact
    /// when both masks only carry bits below `words * 64`, and much
    /// cheaper than a full-width OR on machines far smaller than
    /// [`MAX_UNITS`]. Hot-path variant for plan busy-mask accumulation.
    #[inline]
    pub fn or_with_words(&mut self, other: &UnitMask, words: usize) {
        debug_assert!(words <= WORDS);
        for w in 0..words.min(WORDS) {
            self.words[w] |= other.words[w];
        }
    }

    /// True iff the two masks share any set bit.
    pub fn intersects(&self, other: &UnitMask) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Bitwise AND with another mask, in place.
    pub fn and_with(&mut self, other: &UnitMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Remove every bit set in `other` (bitwise AND-NOT), in place.
    pub fn and_not_with(&mut self, other: &UnitMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The bits set in both masks.
    pub fn intersection(&self, other: &UnitMask) -> UnitMask {
        let mut out = *self;
        out.and_with(other);
        out
    }

    /// True iff every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &UnitMask) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Lowest start of a fully-clear block of `k` bits among the first
    /// `units` bits, with buddy alignment (starts at multiples of `k`).
    /// `k` must be a power of two. Word-parallel: a shift-fold turns
    /// "k consecutive clear bits" into a single bit test per word, so the
    /// search is O(words), not O(units/k) probes.
    pub fn first_clear_aligned_block(&self, k: u16, units: u16) -> Option<u16> {
        debug_assert!(k.is_power_of_two());
        debug_assert!(units as usize <= MAX_UNITS);
        let k = k as usize;
        let units = units as usize;
        if k > units {
            return None;
        }
        if k >= 64 {
            // Blocks are whole runs of k/64 words.
            let step_words = k / 64;
            let mut start = 0;
            while start + k <= units {
                let w0 = start / 64;
                if self.words[w0..w0 + step_words].iter().all(|&w| w == 0) {
                    return Some(start as u16);
                }
                start += k;
            }
            return None;
        }
        // k < 64: aligned blocks never cross a word boundary. Bits at
        // multiples of k within a word: 0x…0101 for k=8, etc.
        let stride_pattern = u64::MAX / ((1u64 << k) - 1);
        let mut w = 0;
        while w * 64 < units {
            let valid = (units - w * 64).min(64);
            let mut free = !self.words[w];
            if valid < 64 {
                free &= (1u64 << valid) - 1;
            }
            // After folding shifts 1, 2, …, k/2, bit b survives iff bits
            // b..b+k are all free.
            let mut m = free;
            let mut run = 1;
            while run < k {
                m &= m >> run;
                run <<= 1;
            }
            let cand = m & stride_pattern;
            if cand != 0 {
                return Some((w * 64 + cand.trailing_zeros() as usize) as u16);
            }
            w += 1;
        }
        None
    }

    // -- per-bit reference implementations --------------------------------
    //
    // The pre-word-level range ops, kept verbatim so differential tests
    // and the allocator microbench can compare the optimized word loops
    // against the original bookkeeping bit by bit.

    /// Per-bit reference for [`UnitMask::set_range`].
    #[doc(hidden)]
    pub fn set_range_naive(&mut self, start: u16, len: u16) {
        let (start, end) = range_bounds(start, len);
        for bit in start..end {
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Per-bit reference for [`UnitMask::clear_range`].
    #[doc(hidden)]
    pub fn clear_range_naive(&mut self, start: u16, len: u16) {
        let (start, end) = range_bounds(start, len);
        for bit in start..end {
            self.words[bit / 64] &= !(1u64 << (bit % 64));
        }
    }

    /// Per-bit reference for [`UnitMask::range_is_set`].
    #[doc(hidden)]
    pub fn range_is_set_naive(&self, start: u16, len: u16) -> bool {
        let (start, end) = range_bounds(start, len);
        (start..end).all(|bit| self.words[bit / 64] & (1u64 << (bit % 64)) != 0)
    }

    /// Per-bit reference for [`UnitMask::range_is_clear`].
    #[doc(hidden)]
    pub fn range_is_clear_naive(&self, start: u16, len: u16) -> bool {
        let (start, end) = range_bounds(start, len);
        (start..end).all(|bit| self.words[bit / 64] & (1u64 << (bit % 64)) == 0)
    }

    /// Per-probe reference for [`UnitMask::first_clear_aligned_block`]:
    /// the original stepping search over per-bit range tests.
    #[doc(hidden)]
    pub fn first_clear_aligned_block_naive(&self, k: u16, units: u16) -> Option<u16> {
        let mut start = 0u16;
        while start + k <= units {
            if self.range_is_clear_naive(start, k) {
                return Some(start);
            }
            start += k;
        }
        None
    }
}

impl amjs_sim::Snapshot for UnitMask {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        for word in self.words {
            w.put_u64(word);
        }
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        let mut words = [0u64; WORDS];
        for word in &mut words {
            *word = r.get_u64()?;
        }
        Ok(UnitMask { words })
    }
}

#[inline]
fn range_bounds(start: u16, len: u16) -> (usize, usize) {
    let start = start as usize;
    let end = start + len as usize;
    assert!(
        end <= MAX_UNITS,
        "unit range {start}..{end} exceeds {MAX_UNITS}"
    );
    (start, end)
}

/// A u64 with `len` bits set starting at `offset` (len may be 0..=64).
#[inline]
fn word_mask(offset: usize, len: usize) -> u64 {
    debug_assert!(offset + len <= 64 || len <= 64);
    if len >= 64 {
        u64::MAX << offset
    } else {
        ((1u64 << len) - 1) << offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_round_trip() {
        let mut m = UnitMask::empty();
        assert!(m.is_empty());
        m.set_range(10, 20);
        assert_eq!(m.count_ones(), 20);
        assert!(m.range_is_set(10, 20));
        assert!(!m.range_is_clear(10, 1));
        assert!(m.range_is_clear(0, 10));
        assert!(m.range_is_clear(30, 100));
        m.clear_range(10, 20);
        assert!(m.is_empty());
    }

    #[test]
    fn cross_word_ranges() {
        let mut m = UnitMask::empty();
        // Spans words 0..3.
        m.set_range(60, 140);
        assert_eq!(m.count_ones(), 140);
        assert!(m.range_is_set(60, 140));
        assert!(m.range_is_clear(0, 60));
        assert!(m.range_is_clear(200, 300));
        assert!(!m.range_is_clear(59, 2));
        assert!(!m.range_is_clear(199, 2));
    }

    #[test]
    fn block_constructor_and_intersects() {
        let a = UnitMask::block(0, 64);
        let b = UnitMask::block(63, 2);
        let c = UnitMask::block(64, 64);
        assert!(a.intersects(&b));
        assert!(b.intersects(&c));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn or_with_accumulates() {
        let mut m = UnitMask::empty();
        m.or_with(&UnitMask::block(0, 10));
        m.or_with(&UnitMask::block(5, 10));
        assert_eq!(m.count_ones(), 15);
    }

    #[test]
    fn full_width_ranges() {
        let mut m = UnitMask::empty();
        m.set_range(0, MAX_UNITS as u16);
        assert_eq!(m.count_ones(), MAX_UNITS as u32);
        assert!(!m.range_is_clear(1023, 1));
        m.clear_range(0, MAX_UNITS as u16);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_panics() {
        let mut m = UnitMask::empty();
        m.set_range(1020, 10);
    }

    #[test]
    fn zero_length_ranges_are_noops() {
        let mut m = UnitMask::block(5, 5);
        m.set_range(100, 0);
        m.clear_range(100, 0);
        assert!(m.range_is_clear(100, 0));
        assert!(m.range_is_clear(0, 0)); // start 0 must not underflow
        assert_eq!(m.count_ones(), 5);
    }

    #[test]
    fn intrepid_fine_geometry_fits() {
        // 640 units of 64 nodes: the sub-midplane Intrepid model.
        let mut m = UnitMask::empty();
        m.set_range(0, 640);
        assert_eq!(m.count_ones(), 640);
    }
}
