//! # amjs-platform — machine models for job scheduling simulation
//!
//! The ICPP 2012 paper evaluates on Intrepid, the 40,960-node Blue Gene/P
//! at Argonne, where jobs run on *partitions*: contiguous, aligned,
//! power-of-two groups of 512-node midplanes. Partitioned allocation is
//! what makes the paper's Loss-of-Capacity metric (eq. 4) non-trivial — a
//! machine can hold plenty of idle nodes yet be unable to start a waiting
//! job because no free *partition* of the right shape exists.
//!
//! Two machine models are provided:
//!
//! * [`flat::FlatCluster`] — an idealized pool of interchangeable nodes
//!   (any `n ≤ idle` request succeeds). Useful as an ablation baseline and
//!   for fast tests.
//! * [`bgp::BgpCluster`] — the Blue Gene/P model: a line of midplanes with
//!   buddy-style aligned power-of-two blocks (plus the full machine as a
//!   special partition), defaulting to Intrepid's geometry of 80 midplanes
//!   × 512 nodes.
//!
//! Both implement [`Platform`] for *live* allocation and expose a
//! [`Plan`] — a cheap what-if availability profile over future time used
//! by the scheduler for window permutation search, reservations, and
//! backfill admission (see `amjs-core`). Plans support LIFO rollback so a
//! permutation can be speculatively committed and undone without cloning
//! the whole profile.

#![warn(missing_docs)]

pub mod bgp;
pub mod flat;
pub mod mask;
pub mod plan;

pub use bgp::BgpCluster;
pub use flat::FlatCluster;
pub use plan::{FlatPlan, PartitionPlan, Placement, PlacementHint, Plan, PlanToken};

use amjs_sim::SimTime;

/// Number of compute nodes (cores are not modeled; the paper schedules in
/// node units).
pub type Nodes = u32;

/// Opaque handle for a live allocation on a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocationId(pub u64);

impl amjs_sim::Snapshot for AllocationId {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        Ok(AllocationId(r.get_u64()?))
    }
}

/// Result of taking a node out of service ([`Platform::mark_down`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainOutcome {
    /// The node's capacity was free; it left service immediately.
    Down,
    /// The node sits inside the given live allocation. Its capacity
    /// leaves service when that allocation releases (job end or kill);
    /// until then the allocation keeps running ("draining").
    Draining(AllocationId),
    /// The node was already out of service (or already draining); the
    /// call changed nothing.
    AlreadyDown,
}

/// A machine that can run jobs now and describe its future availability.
pub trait Platform {
    /// The what-if planning profile type for this machine.
    type Plan: Plan;

    /// Short machine name for reports (e.g. `"bgp-intrepid"`).
    fn name(&self) -> &'static str;

    /// Total node count.
    fn total_nodes(&self) -> Nodes;

    /// Nodes not currently assigned to any allocation. On a partitioned
    /// machine this counts whole idle partitions' nodes, including ones
    /// unusable for a given request due to fragmentation.
    fn idle_nodes(&self) -> Nodes;

    /// The smallest request the machine will allocate (requests are
    /// rounded up to an allocatable shape; e.g. 512 on Blue Gene/P).
    fn min_allocation(&self) -> Nodes;

    /// The node count actually consumed by a request of `nodes` (after
    /// rounding up to an allocatable partition shape).
    fn rounded_size(&self, nodes: Nodes) -> Nodes;

    /// Whether a request of `nodes` could be allocated right now.
    fn can_allocate(&self, nodes: Nodes) -> bool;

    /// Allocate `nodes` now. Returns `None` when no suitable shape is
    /// free (even if `idle_nodes() >= nodes` — that is fragmentation).
    fn allocate(&mut self, nodes: Nodes) -> Option<AllocationId>;

    /// Allocate `nodes` on the exact block a plan chose (see
    /// [`plan::PlacementHint`]). A zero-length hint falls back to the
    /// machine's own choice. Returns `None` if the hinted block is not
    /// free or does not match the rounded request size.
    fn allocate_hinted(&mut self, nodes: Nodes, hint: PlacementHint) -> Option<AllocationId>;

    /// Release a live allocation, returning the node count freed.
    ///
    /// # Panics
    /// Panics on an unknown id — double releases are logic errors.
    fn release(&mut self, id: AllocationId) -> Nodes;

    /// Rounded node count held by a live allocation.
    fn allocation_size(&self, id: AllocationId) -> Option<Nodes>;

    /// All live allocation ids, in ascending id order (deterministic).
    fn active_allocations(&self) -> Vec<AllocationId>;

    /// Build a what-if plan of future availability. `release_time(id)`
    /// must give the expected release time (≥ `now`) of each live
    /// allocation; the scheduler derives it from job start + requested
    /// walltime, clamped to `now` for jobs running past their estimate.
    /// The plan never promises capacity that is out of service.
    fn plan(&self, now: SimTime, release_time: &dyn Fn(AllocationId) -> SimTime) -> Self::Plan;

    // ----- node lifecycle (failure → drain → repair) -----

    /// Nodes currently in service: `total_nodes()` minus out-of-service
    /// capacity. Draining capacity (inside a live allocation) still
    /// counts as in service until its allocation releases.
    fn available_nodes(&self) -> Nodes {
        self.total_nodes()
    }

    /// Take the failure quantum containing node index `node` (one node
    /// on a flat machine, the whole midplane on a partitioned one) out
    /// of service. Free capacity leaves service immediately; capacity
    /// inside a live allocation drains — it leaves service when the
    /// allocation releases. Idempotent via [`DrainOutcome::AlreadyDown`].
    ///
    /// # Panics
    /// Panics if `node >= total_nodes()`.
    fn mark_down(&mut self, node: Nodes) -> DrainOutcome;

    /// Return the failure quantum containing node index `node` to
    /// service (repair completed). Cancels a pending drain if the
    /// capacity had not left service yet. No-op if it was in service.
    ///
    /// # Panics
    /// Panics if `node >= total_nodes()`.
    fn mark_up(&mut self, node: Nodes);

    /// The live allocation whose capacity contains node index `node`,
    /// if any. On a flat machine the mapping is a modeling fiction
    /// (allocations occupy consecutive index ranges in id order); on a
    /// partitioned machine it is the block owning the node's unit.
    fn allocation_containing(&self, node: Nodes) -> Option<AllocationId>;

    /// Whether a request of `nodes` could ever be satisfied with the
    /// current out-of-service set, even on an otherwise empty machine.
    /// The scheduler holds back jobs for which this is `false` until a
    /// repair restores enough capacity (instead of planning them onto
    /// capacity that is down).
    fn could_ever_allocate(&self, nodes: Nodes) -> bool;

    // ----- invariant oracle hooks -----

    /// Deep self-consistency check for the runtime invariant oracle:
    /// live allocations pairwise disjoint (no double allocation), busy
    /// bookkeeping in agreement with the live set, down/draining sets
    /// well-formed. Returns a diagnostic message on the first violation
    /// found. The default is a no-op so simple or test platforms need
    /// not implement it.
    fn check_consistency(&self) -> Result<(), String> {
        Ok(())
    }

    /// Whether any capacity of the live allocation `id` is out of
    /// service or pending drain. The simulation runner kills a job the
    /// moment a failure lands in its partition, so between events this
    /// must be `false` for every live allocation — the oracle's "no
    /// running job intersects a down midplane" invariant. The default
    /// (`false`) suits platforms without a node lifecycle.
    fn allocation_intersects_down(&self, _id: AllocationId) -> bool {
        false
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// Exercise the shared Platform contract against both machines.
    fn contract<P: Platform>(mut p: P) {
        let total = p.total_nodes();
        assert_eq!(p.idle_nodes(), total);
        let min = p.min_allocation();
        assert!(p.can_allocate(min));
        let id = p.allocate(min).expect("min allocation fits empty machine");
        assert_eq!(p.allocation_size(id), Some(p.rounded_size(min)));
        assert_eq!(p.idle_nodes(), total - p.rounded_size(min));
        assert_eq!(p.active_allocations(), vec![id]);
        let freed = p.release(id);
        assert_eq!(freed, p.rounded_size(min));
        assert_eq!(p.idle_nodes(), total);
        assert!(p.active_allocations().is_empty());
    }

    #[test]
    fn flat_satisfies_contract() {
        contract(FlatCluster::new(4096));
    }

    #[test]
    fn bgp_satisfies_contract() {
        contract(BgpCluster::intrepid());
    }
}
