//! Span-based self-profiling for the simulator's hot paths.
//!
//! Explicit hierarchical wall-clock spans: call [`Profiler::enter`] at
//! the top of a hot path and [`Profiler::exit`] with the returned token
//! at the bottom. Nested enters build a path (`schedule_pass/backfill`)
//! so costs aggregate per call-site *in context*. Aggregation keeps
//! count/total/min/max per path; rendering follows the formatting idiom
//! of the `amjs-bench` timing harness (engineering-notation seconds).
//!
//! Wall-clock (`std::time::Instant`) is read **only** inside an enabled
//! profiler — a disabled run never constructs one, so determinism and
//! the zero-cost guarantee are untouched.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::json::ObjWriter;

/// Aggregated statistics for one span path.
#[derive(Clone, Debug)]
pub struct SpanStats {
    /// Completed executions.
    pub count: u64,
    /// Summed wall time.
    pub total: Duration,
    /// Fastest execution.
    pub min: Duration,
    /// Slowest execution.
    pub max: Duration,
}

impl SpanStats {
    fn observe(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
    }

    /// Mean wall time per execution.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Proof of a matching [`Profiler::enter`]; hand it back to
/// [`Profiler::exit`]. Deliberately not `Copy`/`Clone`: each enter is
/// exited exactly once.
#[derive(Debug)]
pub struct SpanToken {
    depth: usize,
}

/// Collects hierarchical wall-clock spans.
pub struct Profiler {
    /// Names of currently-open spans, outermost first.
    path: Vec<&'static str>,
    /// Start instants matching `path`.
    starts: Vec<Instant>,
    /// Aggregates keyed by `"outer/inner"` path.
    spans: BTreeMap<String, SpanStats>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler {
            path: Vec::new(),
            starts: Vec::new(),
            spans: BTreeMap::new(),
        }
    }

    /// Open a span. Must be closed with [`Profiler::exit`], innermost
    /// first.
    pub fn enter(&mut self, name: &'static str) -> SpanToken {
        self.path.push(name);
        self.starts.push(Instant::now());
        SpanToken {
            depth: self.path.len(),
        }
    }

    /// Close the span `token` came from.
    ///
    /// # Panics
    /// Panics if spans would close out of order — that is a bug at the
    /// instrumentation site, not a recoverable condition.
    pub fn exit(&mut self, token: SpanToken) {
        assert_eq!(
            token.depth,
            self.path.len(),
            "span exit out of order (token depth {} vs open depth {})",
            token.depth,
            self.path.len()
        );
        let start = self.starts.pop().expect("token depth checked above");
        let elapsed = start.elapsed();
        let key = self.path.join("/");
        self.path.pop();
        self.spans
            .entry(key)
            .or_insert(SpanStats {
                count: 0,
                total: Duration::ZERO,
                min: Duration::MAX,
                max: Duration::ZERO,
            })
            .observe(elapsed);
    }

    /// Aggregates keyed by span path (lexicographic order groups
    /// children under their parents).
    pub fn spans(&self) -> &BTreeMap<String, SpanStats> {
        &self.spans
    }

    /// Render the aligned text table for `--profile`.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>9} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "total", "mean", "min", "max"
        );
        for (path, s) in &self.spans {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth), leaf);
            let _ = writeln!(
                out,
                "{:<40} {:>9} {:>10} {:>10} {:>10} {:>10}",
                label,
                s.count,
                fmt_secs(s.total.as_secs_f64()),
                fmt_secs(s.mean().as_secs_f64()),
                fmt_secs(s.min.as_secs_f64()),
                fmt_secs(s.max.as_secs_f64()),
            );
        }
        out
    }

    /// Render as a JSON document for `--profile-json`.
    pub fn to_json(&self) -> String {
        let mut arr = String::from("[");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let mut w = ObjWriter::new();
            w.str("path", path)
                .u64("count", s.count)
                .f64("total_s", s.total.as_secs_f64())
                .f64("mean_s", s.mean().as_secs_f64())
                .f64("min_s", s.min.as_secs_f64())
                .f64("max_s", s.max.as_secs_f64());
            arr.push_str(&w.finish());
        }
        arr.push(']');
        let mut root = ObjWriter::new();
        root.raw("spans", &arr);
        root.finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Format seconds for the profile table — same idiom as the bench
/// harness: three significant-ish digits with an s/ms/µs/ns unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2}µs", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_paths() {
        let mut p = Profiler::new();
        let outer = p.enter("pass");
        let inner = p.enter("sort");
        p.exit(inner);
        let inner = p.enter("backfill");
        p.exit(inner);
        p.exit(outer);
        let keys: Vec<&str> = p.spans().keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["pass", "pass/backfill", "pass/sort"]);
        assert_eq!(p.spans()["pass"].count, 1);
        assert_eq!(p.spans()["pass/sort"].count, 1);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            let t = p.enter("tick");
            p.exit(t);
        }
        let s = &p.spans()["tick"];
        assert_eq!(s.count, 3);
        assert!(s.total >= s.max);
        assert!(s.min <= s.max);
        assert!(s.mean() <= s.max);
    }

    #[test]
    #[should_panic(expected = "span exit out of order")]
    fn out_of_order_exit_panics() {
        let mut p = Profiler::new();
        let outer = p.enter("a");
        let _inner = p.enter("b");
        p.exit(outer); // inner still open
    }

    #[test]
    fn renders_table_and_json() {
        let mut p = Profiler::new();
        let t = p.enter("pass");
        let u = p.enter("sort");
        p.exit(u);
        p.exit(t);
        let table = p.table();
        assert!(table.contains("span"));
        assert!(table.contains("pass"));
        assert!(table.contains("  sort")); // indented child
        let json = crate::json::parse(&p.to_json()).unwrap();
        let spans = json.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("path").unwrap().as_str(), Some("pass"));
        assert!(spans[0].get("total_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-6), "2.50µs");
        assert_eq!(fmt_secs(2.4e-9), "2ns");
    }
}
