//! The [`Observer`]: the one handle the simulation runner carries.
//!
//! Bundles an optional trace sink, an optional shared profiler, and an
//! optional live-stats publisher. Every capability is independently
//! `Option`-gated so the disabled observer is free: no sink ⇒ no event
//! is ever constructed (call sites gate on [`Observer::tracing`]), no
//! profiler ⇒ span calls return immediately, no publisher ⇒ nothing is
//! locked. The observer is deliberately *not* part of any snapshot or
//! state hash — it observes the run, it is not the run.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use amjs_sim::SimTime;

use crate::event::{TraceEvent, TraceRecord};
use crate::expo::{Heartbeat, LiveStats, SharedStats};
use crate::profile::{Profiler, SpanToken};
use crate::sink::TraceSink;

/// A sink shared between the runner and whoever wants to inspect it
/// after the run (e.g. the CLI dumping a ring buffer's tail).
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// A profiler shared between the runner, the scheduler pass, and the
/// persistence recorder (all on the simulation thread).
pub type SharedProfiler = Rc<RefCell<Profiler>>;

/// Observation capabilities attached to one simulation run.
#[derive(Default)]
pub struct Observer {
    sink: Option<SharedSink>,
    profiler: Option<SharedProfiler>,
    live: Option<SharedStats>,
    heartbeat: Option<Heartbeat>,
    /// Engine event index of the event currently being handled.
    current: u64,
    /// Total events begun (the next `begin_event` gets this index).
    next: u64,
}

impl Observer {
    /// An observer with every capability off — the zero-cost default.
    pub fn disabled() -> Self {
        Observer::default()
    }

    /// Attach a trace sink.
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a shared profiler.
    pub fn with_profiler(mut self, profiler: SharedProfiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Attach a live-stats publisher (the metrics endpoint reads it).
    pub fn with_live(mut self, stats: SharedStats) -> Self {
        self.live = Some(stats);
        self
    }

    /// Attach a throttled stderr heartbeat.
    pub fn with_heartbeat(mut self, heartbeat: Heartbeat) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// True when any capability is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
            || self.profiler.is_some()
            || self.live.is_some()
            || self.heartbeat.is_some()
    }

    /// True when decision events should be constructed and emitted.
    /// Call sites gate on this so a disabled run never allocates.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// True when live stats should be published.
    #[inline]
    pub fn live_enabled(&self) -> bool {
        self.live.is_some() || self.heartbeat.is_some()
    }

    /// Mark the start of the next engine event; subsequent emissions
    /// carry its index. Mirrors the engine's own numbering: the first
    /// event of a fresh run is index 0.
    #[inline]
    pub fn begin_event(&mut self) {
        self.current = self.next;
        self.next += 1;
    }

    /// Index of the event currently being handled.
    pub fn current_index(&self) -> u64 {
        self.current
    }

    /// Events begun so far.
    pub fn events_begun(&self) -> u64 {
        self.next
    }

    /// Emit one decision event at simulated time `t`. No-op (and the
    /// event argument should not even be built — gate on
    /// [`Observer::tracing`]) when no sink is attached.
    pub fn emit(&mut self, t: SimTime, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(&TraceRecord {
                index: self.current,
                t: t.as_secs(),
                event,
            });
        }
    }

    /// Open a profiling span (`None` when profiling is off).
    #[inline]
    pub fn prof_enter(&self, name: &'static str) -> Option<SpanToken> {
        self.profiler.as_ref().map(|p| p.borrow_mut().enter(name))
    }

    /// Close a span opened by [`Observer::prof_enter`].
    #[inline]
    pub fn prof_exit(&self, token: Option<SpanToken>) {
        if let Some(token) = token {
            if let Some(p) = &self.profiler {
                p.borrow_mut().exit(token);
            }
        }
    }

    /// The shared profiler, for handing into deeper layers.
    pub fn profiler(&self) -> Option<&SharedProfiler> {
        self.profiler.as_ref()
    }

    /// Publish a fresh live sample (and maybe heartbeat to stderr).
    pub fn publish(&mut self, mut stats: LiveStats) {
        stats.events = self.next;
        if let Some(live) = &self.live {
            if let Ok(mut guard) = live.lock() {
                *guard = stats.clone();
            }
        }
        if let Some(hb) = &mut self.heartbeat {
            hb.maybe_beat(&stats);
        }
    }

    /// End-of-run housekeeping: flush the sink and mark the live stats
    /// done so scrapers can see completion.
    pub fn finish(&mut self) {
        if let Some(sink) = &self.sink {
            if let Err(e) = sink.borrow_mut().flush() {
                panic!("trace flush failed: {e}");
            }
        }
        if let Some(live) = &self.live {
            if let Ok(mut guard) = live.lock() {
                guard.done = true;
            }
        }
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("tracing", &self.sink.is_some())
            .field("profiling", &self.profiler.is_some())
            .field("live", &self.live.is_some())
            .field("heartbeat", &self.heartbeat.is_some())
            .field("events_begun", &self.next)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::shared_stats;
    use crate::sink::VecSink;

    fn shared_vec_sink() -> (Rc<RefCell<VecSink>>, SharedSink) {
        let sink = Rc::new(RefCell::new(VecSink::new()));
        let shared: SharedSink = sink.clone();
        (sink, shared)
    }

    #[test]
    fn disabled_observer_reports_everything_off() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.tracing());
        assert!(!obs.live_enabled());
        assert!(obs.prof_enter("x").is_none());
        obs.prof_exit(None);
    }

    #[test]
    fn emit_carries_the_current_event_index() {
        let (sink, shared) = shared_vec_sink();
        let mut obs = Observer::disabled().with_sink(shared);
        obs.begin_event(); // index 0
        obs.begin_event(); // index 1
        obs.emit(SimTime::from_secs(5), TraceEvent::NodeFailed { node: 3 });
        let records = &sink.borrow().records;
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].index, 1);
        assert_eq!(records[0].t, 5);
    }

    #[test]
    fn profiling_spans_go_to_the_shared_profiler() {
        let prof: SharedProfiler = Rc::new(RefCell::new(Profiler::new()));
        let obs = Observer::disabled().with_profiler(prof.clone());
        let t = obs.prof_enter("hot");
        obs.prof_exit(t);
        assert_eq!(prof.borrow().spans()["hot"].count, 1);
    }

    #[test]
    fn publish_updates_live_stats_and_finish_marks_done() {
        let stats = shared_stats();
        let mut obs = Observer::disabled().with_live(stats.clone());
        obs.begin_event();
        obs.publish(LiveStats {
            running: 7,
            ..LiveStats::default()
        });
        {
            let guard = stats.lock().unwrap();
            assert_eq!(guard.running, 7);
            assert_eq!(guard.events, 1);
            assert!(!guard.done);
        }
        obs.finish();
        assert!(stats.lock().unwrap().done);
    }
}
