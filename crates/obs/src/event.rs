//! The structured decision-event taxonomy and its JSONL codec.
//!
//! One [`TraceRecord`] is emitted per observable decision. Every record
//! carries the engine event index (`i`) of the event being handled when
//! the decision was made, so a trace line correlates exactly with the
//! journal records and replay tags of the persistence layer, plus the
//! simulated time (`t`, whole seconds). Nothing in a record derives
//! from wall-clock state: same seed ⇒ byte-identical trace.

use crate::json::{Json, ObjWriter};

/// One trace line: which engine event it belongs to, when (simulated
/// seconds), and what was decided.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Global engine event index (journal-correlated).
    pub index: u64,
    /// Simulated time, whole seconds since the epoch.
    pub t: i64,
    /// The decision itself.
    pub event: TraceEvent,
}

/// A losing (or pruned) permutation considered by the window search.
#[derive(Clone, Debug, PartialEq)]
pub struct LosingPerm {
    /// Job ids in the order this permutation would start them.
    pub order: Vec<u64>,
    /// How many of them could start immediately.
    pub starts_now: u64,
    /// Window makespan in seconds; `None` when the search pruned the
    /// permutation before completing it.
    pub makespan_s: Option<i64>,
}

/// Why a backfill candidate was accepted or rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackfillReason {
    /// Accepted: the job fits on idle nodes right now without touching
    /// any protected reservation.
    FitsNow,
    /// Rejected: no placement lets the job start at the current time.
    NoStartNow,
    /// Rejected: starting it now would push back a protected
    /// reservation (EASY promise conflict under time-flexible
    /// protection).
    WouldDelayProtected,
}

impl BackfillReason {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            BackfillReason::FitsNow => "fits-now",
            BackfillReason::NoStartNow => "no-feasible-start-now",
            BackfillReason::WouldDelayProtected => "would-delay-protected-reservation",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "fits-now" => Some(BackfillReason::FitsNow),
            "no-feasible-start-now" => Some(BackfillReason::NoStartNow),
            "would-delay-protected-reservation" => Some(BackfillReason::WouldDelayProtected),
            _ => None,
        }
    }
}

/// What happened to a killed job's retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Requeued immediately.
    Requeued,
    /// Requeued after a backoff delay.
    Backoff,
    /// Retry budget exhausted; the job was abandoned.
    Abandoned,
}

impl RetryOutcome {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            RetryOutcome::Requeued => "requeued",
            RetryOutcome::Backoff => "backoff",
            RetryOutcome::Abandoned => "abandoned",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "requeued" => Some(RetryOutcome::Requeued),
            "backoff" => Some(RetryOutcome::Backoff),
            "abandoned" => Some(RetryOutcome::Abandoned),
            _ => None,
        }
    }
}

/// Payload of [`TraceEvent::WindowChoice`]: the outcome of the
/// window-of-W permutation search for one window. Boxed so the rare,
/// Vec-heavy record does not inflate the size of every hot-path record
/// (`job_scored` / `backfill` dominate traces ~50:1).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowChoiceEv {
    /// Window position within the pass (0 = head of queue).
    pub window: u64,
    /// Job ids in the window, in priority order.
    pub jobs: Vec<u64>,
    /// Job ids in the start order the search chose.
    pub order: Vec<u64>,
    /// Jobs of the chosen order that start immediately.
    pub starts_now: u64,
    /// Chosen order's window makespan, seconds.
    pub makespan_s: i64,
    /// Permutations examined (excluding the identity).
    pub searched: u64,
    /// True when every window job already started now under the
    /// priority order, so the search was skipped.
    pub fast_path: bool,
    /// The losing permutations (complete ones carry a makespan;
    /// pruned ones do not).
    pub losers: Vec<LosingPerm>,
}

/// Payload of [`TraceEvent::TunerTransition`]: an adaptive tuner
/// changed a policy parameter — the Table-I tuple inputs and the action
/// taken. Boxed for the same size reason as [`WindowChoiceEv`].
#[derive(Clone, Debug, PartialEq)]
pub struct TunerTransitionEv {
    /// Tunable target `T` (`"balance_factor"` / `"window"`).
    pub tunable: String,
    /// Monitored metric `M`.
    pub metric: String,
    /// Observed metric value.
    pub value: f64,
    /// Threshold `Th`.
    pub threshold: f64,
    /// Step `Δ`.
    pub step: f64,
    /// Clamp interval `Ci` lower bound.
    pub lo: f64,
    /// Clamp interval `Ci` upper bound.
    pub hi: f64,
    /// Direction taken (`"plus"` / `"minus"`).
    pub dir: String,
    /// Balance factor before the step.
    pub bf_before: f64,
    /// Balance factor after the step.
    pub bf_after: f64,
    /// Window size before the step.
    pub window_before: u64,
    /// Window size after the step.
    pub window_after: u64,
}

/// Payload of [`TraceEvent::MetricsSample`]: a periodic monitor sample
/// — the paper's §III-C signals. Boxed for the same size reason as
/// [`WindowChoiceEv`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSampleEv {
    /// Aggregate queue demand, node-minutes (×10⁶ in the figures).
    pub queue_depth_mins: f64,
    /// Instant utilization.
    pub util_instant: f64,
    /// Trailing 1-hour utilization.
    pub util_1h: f64,
    /// Trailing 10-hour utilization.
    pub util_10h: f64,
    /// Trailing 24-hour utilization.
    pub util_24h: f64,
    /// Nodes currently down.
    pub down_nodes: u64,
    /// Jobs running.
    pub running: u64,
    /// Jobs waiting.
    pub waiting: u64,
}

/// Every decision the scheduler, tuners, and node-lifecycle layer can
/// record. Field units are seconds (`*_s`) or the paper's natural units
/// (scores in `[0,1]`, utilization as a fraction).
///
/// The three payload-heavy, rarely-emitted variants are boxed to keep
/// `size_of::<TraceEvent>()` small: the hot-path records (`job_scored`,
/// `backfill`) outnumber them ~50:1 in a real trace, and every emitted
/// record is memcpy'd into the attached sink.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A job entered the wait queue (fresh submit or retry resubmit).
    JobQueued {
        /// Job id.
        job: u64,
        /// Requested nodes.
        nodes: u32,
        /// Requested walltime, seconds.
        walltime_s: i64,
        /// True when this is a retry resubmission, not the first submit.
        resubmit: bool,
    },
    /// Balanced-priority score breakdown (paper eqs. 1–3) computed for
    /// a queued job during a scheduling pass.
    JobScored {
        /// Job id.
        job: u64,
        /// Waiting score `S_w` (eq. 1).
        s_w: f64,
        /// Runtime/walltime score `S_r` (eq. 2).
        s_r: f64,
        /// Balance factor in effect.
        bf: f64,
        /// Combined priority `S_p = BF·S_w + (1−BF)·S_r` (eq. 3).
        priority: f64,
    },
    /// Outcome of the window-of-W permutation search for one window.
    WindowChoice(Box<WindowChoiceEv>),
    /// A backfill candidate was accepted or rejected, and why.
    BackfillDecision {
        /// Job id.
        job: u64,
        /// True when the job was started by backfill.
        accepted: bool,
        /// The reason.
        reason: BackfillReason,
    },
    /// A job began running.
    JobStarted {
        /// Job id.
        job: u64,
        /// Allocated nodes.
        nodes: u32,
        /// True when backfilled ahead of its queue position.
        backfilled: bool,
        /// Time spent waiting since first submit, seconds.
        wait_s: i64,
    },
    /// A job received a protected future reservation (EASY promise /
    /// conservative plan slot).
    JobReserved {
        /// Job id.
        job: u64,
        /// Promised start time, seconds since epoch.
        start_s: i64,
    },
    /// A job finished normally.
    JobFinished {
        /// Job id.
        job: u64,
        /// Nodes released.
        nodes: u32,
        /// Actual running time of this attempt, seconds.
        ran_s: i64,
    },
    /// A running job was killed by a node failure.
    JobKilled {
        /// Job id.
        job: u64,
        /// 1-based attempt number that was killed.
        attempt: u32,
        /// Node-seconds of work lost (after checkpoint credit).
        lost_node_s: i64,
        /// What the retry policy decided.
        outcome: RetryOutcome,
        /// Backoff delay before resubmit, seconds (0 unless
        /// `outcome == Backoff`).
        delay_s: i64,
    },
    /// A node went down.
    NodeFailed {
        /// Node index.
        node: u64,
    },
    /// A node came back up.
    NodeRepaired {
        /// Node index.
        node: u64,
    },
    /// An adaptive tuner changed a policy parameter — the Table-I tuple
    /// inputs and the action taken.
    TunerTransition(Box<TunerTransitionEv>),
    /// A dynP-style switch rule changed the queue ordering policy.
    OrderingSwitch {
        /// Queue length that triggered the rule.
        queue_len: u64,
        /// Ordering now in effect (e.g. `"balanced"`, `"lf"`, `"xf"`).
        ordering: String,
    },
    /// Periodic monitor sample — the paper's §III-C signals.
    MetricsSample(Box<MetricsSampleEv>),
}

impl TraceEvent {
    /// Stable wire tag for the `e` field.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::JobQueued { .. } => "job_queued",
            TraceEvent::JobScored { .. } => "job_scored",
            TraceEvent::WindowChoice(..) => "window_choice",
            TraceEvent::BackfillDecision { .. } => "backfill",
            TraceEvent::JobStarted { .. } => "job_started",
            TraceEvent::JobReserved { .. } => "job_reserved",
            TraceEvent::JobFinished { .. } => "job_finished",
            TraceEvent::JobKilled { .. } => "job_killed",
            TraceEvent::NodeFailed { .. } => "node_failed",
            TraceEvent::NodeRepaired { .. } => "node_repaired",
            TraceEvent::TunerTransition(..) => "tuner_transition",
            TraceEvent::OrderingSwitch { .. } => "ordering_switch",
            TraceEvent::MetricsSample(..) => "metrics_sample",
        }
    }

    /// The single job this event is about, when it is about one.
    pub fn job_id(&self) -> Option<u64> {
        match self {
            TraceEvent::JobQueued { job, .. }
            | TraceEvent::JobScored { job, .. }
            | TraceEvent::BackfillDecision { job, .. }
            | TraceEvent::JobStarted { job, .. }
            | TraceEvent::JobReserved { job, .. }
            | TraceEvent::JobFinished { job, .. }
            | TraceEvent::JobKilled { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// Job ids a [`TraceEvent::WindowChoice`] covers (empty otherwise).
    pub fn window_jobs(&self) -> &[u64] {
        match self {
            TraceEvent::WindowChoice(wc) => &wc.jobs,
            _ => &[],
        }
    }
}

impl TraceRecord {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjWriter::new();
        w.u64("i", self.index)
            .i64("t", self.t)
            .str("e", self.event.tag());
        match &self.event {
            TraceEvent::JobQueued {
                job,
                nodes,
                walltime_s,
                resubmit,
            } => {
                w.u64("job", *job)
                    .u64("nodes", *nodes as u64)
                    .i64("walltime_s", *walltime_s)
                    .bool("resubmit", *resubmit);
            }
            TraceEvent::JobScored {
                job,
                s_w,
                s_r,
                bf,
                priority,
            } => {
                w.u64("job", *job)
                    .f64("s_w", *s_w)
                    .f64("s_r", *s_r)
                    .f64("bf", *bf)
                    .f64("priority", *priority);
            }
            TraceEvent::WindowChoice(wc) => {
                w.u64("window", wc.window)
                    .u64_arr("jobs", &wc.jobs)
                    .u64_arr("order", &wc.order)
                    .u64("starts_now", wc.starts_now)
                    .i64("makespan_s", wc.makespan_s)
                    .u64("searched", wc.searched)
                    .bool("fast_path", wc.fast_path);
                let mut arr = String::from("[");
                for (i, l) in wc.losers.iter().enumerate() {
                    if i > 0 {
                        arr.push(',');
                    }
                    let mut lw = ObjWriter::new();
                    lw.u64_arr("order", &l.order)
                        .u64("starts_now", l.starts_now);
                    match l.makespan_s {
                        Some(m) => lw.i64("makespan_s", m),
                        None => lw.raw("makespan_s", "null"),
                    };
                    arr.push_str(&lw.finish());
                }
                arr.push(']');
                w.raw("losers", &arr);
            }
            TraceEvent::BackfillDecision {
                job,
                accepted,
                reason,
            } => {
                w.u64("job", *job)
                    .bool("accepted", *accepted)
                    .str("reason", reason.tag());
            }
            TraceEvent::JobStarted {
                job,
                nodes,
                backfilled,
                wait_s,
            } => {
                w.u64("job", *job)
                    .u64("nodes", *nodes as u64)
                    .bool("backfilled", *backfilled)
                    .i64("wait_s", *wait_s);
            }
            TraceEvent::JobReserved { job, start_s } => {
                w.u64("job", *job).i64("start_s", *start_s);
            }
            TraceEvent::JobFinished { job, nodes, ran_s } => {
                w.u64("job", *job)
                    .u64("nodes", *nodes as u64)
                    .i64("ran_s", *ran_s);
            }
            TraceEvent::JobKilled {
                job,
                attempt,
                lost_node_s,
                outcome,
                delay_s,
            } => {
                w.u64("job", *job)
                    .u64("attempt", *attempt as u64)
                    .i64("lost_node_s", *lost_node_s)
                    .str("outcome", outcome.tag())
                    .i64("delay_s", *delay_s);
            }
            TraceEvent::NodeFailed { node } => {
                w.u64("node", *node);
            }
            TraceEvent::NodeRepaired { node } => {
                w.u64("node", *node);
            }
            TraceEvent::TunerTransition(tt) => {
                w.str("tunable", &tt.tunable)
                    .str("metric", &tt.metric)
                    .f64("value", tt.value)
                    .f64("threshold", tt.threshold)
                    .f64("step", tt.step)
                    .f64("lo", tt.lo)
                    .f64("hi", tt.hi)
                    .str("dir", &tt.dir)
                    .f64("bf_before", tt.bf_before)
                    .f64("bf_after", tt.bf_after)
                    .u64("window_before", tt.window_before)
                    .u64("window_after", tt.window_after);
            }
            TraceEvent::OrderingSwitch {
                queue_len,
                ordering,
            } => {
                w.u64("queue_len", *queue_len).str("ordering", ordering);
            }
            TraceEvent::MetricsSample(ms) => {
                w.f64("queue_depth_mins", ms.queue_depth_mins)
                    .f64("util_instant", ms.util_instant)
                    .f64("util_1h", ms.util_1h)
                    .f64("util_10h", ms.util_10h)
                    .f64("util_24h", ms.util_24h)
                    .u64("down_nodes", ms.down_nodes)
                    .u64("running", ms.running)
                    .u64("waiting", ms.waiting);
            }
        }
        w.finish()
    }

    /// Parse one JSONL line back into a record.
    pub fn from_json_line(line: &str) -> Result<TraceRecord, String> {
        let v = crate::json::parse(line)?;
        TraceRecord::from_json(&v)
    }

    /// Decode from an already-parsed JSON object.
    pub fn from_json(v: &Json) -> Result<TraceRecord, String> {
        let index = field_u64(v, "i")?;
        let t = field_i64(v, "t")?;
        let tag = v
            .get("e")
            .and_then(Json::as_str)
            .ok_or("missing event tag \"e\"")?;
        let event = match tag {
            "job_queued" => TraceEvent::JobQueued {
                job: field_u64(v, "job")?,
                nodes: field_u64(v, "nodes")? as u32,
                walltime_s: field_i64(v, "walltime_s")?,
                resubmit: field_bool(v, "resubmit")?,
            },
            "job_scored" => TraceEvent::JobScored {
                job: field_u64(v, "job")?,
                s_w: field_f64(v, "s_w")?,
                s_r: field_f64(v, "s_r")?,
                bf: field_f64(v, "bf")?,
                priority: field_f64(v, "priority")?,
            },
            "window_choice" => TraceEvent::WindowChoice(Box::new(WindowChoiceEv {
                window: field_u64(v, "window")?,
                jobs: field_u64_arr(v, "jobs")?,
                order: field_u64_arr(v, "order")?,
                starts_now: field_u64(v, "starts_now")?,
                makespan_s: field_i64(v, "makespan_s")?,
                searched: field_u64(v, "searched")?,
                fast_path: field_bool(v, "fast_path")?,
                losers: {
                    let arr = v
                        .get("losers")
                        .and_then(Json::as_arr)
                        .ok_or("missing losers")?;
                    arr.iter()
                        .map(|l| {
                            Ok(LosingPerm {
                                order: field_u64_arr(l, "order")?,
                                starts_now: field_u64(l, "starts_now")?,
                                makespan_s: match l.get("makespan_s") {
                                    Some(Json::Null) | None => None,
                                    Some(m) => Some(m.as_i64().ok_or("bad loser makespan")?),
                                },
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?
                },
            })),
            "backfill" => TraceEvent::BackfillDecision {
                job: field_u64(v, "job")?,
                accepted: field_bool(v, "accepted")?,
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(BackfillReason::from_tag)
                    .ok_or("bad backfill reason")?,
            },
            "job_started" => TraceEvent::JobStarted {
                job: field_u64(v, "job")?,
                nodes: field_u64(v, "nodes")? as u32,
                backfilled: field_bool(v, "backfilled")?,
                wait_s: field_i64(v, "wait_s")?,
            },
            "job_reserved" => TraceEvent::JobReserved {
                job: field_u64(v, "job")?,
                start_s: field_i64(v, "start_s")?,
            },
            "job_finished" => TraceEvent::JobFinished {
                job: field_u64(v, "job")?,
                nodes: field_u64(v, "nodes")? as u32,
                ran_s: field_i64(v, "ran_s")?,
            },
            "job_killed" => TraceEvent::JobKilled {
                job: field_u64(v, "job")?,
                attempt: field_u64(v, "attempt")? as u32,
                lost_node_s: field_i64(v, "lost_node_s")?,
                outcome: v
                    .get("outcome")
                    .and_then(Json::as_str)
                    .and_then(RetryOutcome::from_tag)
                    .ok_or("bad retry outcome")?,
                delay_s: field_i64(v, "delay_s")?,
            },
            "node_failed" => TraceEvent::NodeFailed {
                node: field_u64(v, "node")?,
            },
            "node_repaired" => TraceEvent::NodeRepaired {
                node: field_u64(v, "node")?,
            },
            "tuner_transition" => TraceEvent::TunerTransition(Box::new(TunerTransitionEv {
                tunable: field_str(v, "tunable")?,
                metric: field_str(v, "metric")?,
                value: field_f64(v, "value")?,
                threshold: field_f64(v, "threshold")?,
                step: field_f64(v, "step")?,
                lo: field_f64(v, "lo")?,
                hi: field_f64(v, "hi")?,
                dir: field_str(v, "dir")?,
                bf_before: field_f64(v, "bf_before")?,
                bf_after: field_f64(v, "bf_after")?,
                window_before: field_u64(v, "window_before")?,
                window_after: field_u64(v, "window_after")?,
            })),
            "ordering_switch" => TraceEvent::OrderingSwitch {
                queue_len: field_u64(v, "queue_len")?,
                ordering: field_str(v, "ordering")?,
            },
            "metrics_sample" => TraceEvent::MetricsSample(Box::new(MetricsSampleEv {
                queue_depth_mins: field_f64(v, "queue_depth_mins")?,
                util_instant: field_f64(v, "util_instant")?,
                util_1h: field_f64(v, "util_1h")?,
                util_10h: field_f64(v, "util_10h")?,
                util_24h: field_f64(v, "util_24h")?,
                down_nodes: field_u64(v, "down_nodes")?,
                running: field_u64(v, "running")?,
                waiting: field_u64(v, "waiting")?,
            })),
            other => return Err(format!("unknown event tag {other:?}")),
        };
        Ok(TraceRecord { index, t, event })
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid field {key:?}"))
}

fn field_i64(v: &Json, key: &str) -> Result<i64, String> {
    v.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("missing/invalid field {key:?}"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing/invalid field {key:?}"))
}

fn field_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing/invalid field {key:?}"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/invalid field {key:?}"))
}

fn field_u64_arr(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing/invalid field {key:?}"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("bad element in {key:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: TraceEvent) {
        let rec = TraceRecord {
            index: 12,
            t: 3600,
            event,
        };
        let line = rec.to_json_line();
        let back = TraceRecord::from_json_line(&line).unwrap();
        assert_eq!(back, rec, "line was: {line}");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(TraceEvent::JobQueued {
            job: 5,
            nodes: 64,
            walltime_s: 7200,
            resubmit: true,
        });
        round_trip(TraceEvent::JobScored {
            job: 5,
            s_w: 0.25,
            s_r: 1.0,
            bf: 0.5,
            priority: 0.625,
        });
        round_trip(TraceEvent::WindowChoice(Box::new(WindowChoiceEv {
            window: 0,
            jobs: vec![5, 9, 2],
            order: vec![9, 5, 2],
            starts_now: 2,
            makespan_s: 9000,
            searched: 5,
            fast_path: false,
            losers: vec![
                LosingPerm {
                    order: vec![5, 9, 2],
                    starts_now: 1,
                    makespan_s: Some(9600),
                },
                LosingPerm {
                    order: vec![2, 9, 5],
                    starts_now: 1,
                    makespan_s: None,
                },
            ],
        })));
        round_trip(TraceEvent::BackfillDecision {
            job: 7,
            accepted: false,
            reason: BackfillReason::WouldDelayProtected,
        });
        round_trip(TraceEvent::JobStarted {
            job: 7,
            nodes: 32,
            backfilled: true,
            wait_s: 600,
        });
        round_trip(TraceEvent::JobReserved {
            job: 3,
            start_s: 7200,
        });
        round_trip(TraceEvent::JobFinished {
            job: 3,
            nodes: 128,
            ran_s: 3000,
        });
        round_trip(TraceEvent::JobKilled {
            job: 3,
            attempt: 2,
            lost_node_s: 4096,
            outcome: RetryOutcome::Backoff,
            delay_s: 300,
        });
        round_trip(TraceEvent::NodeFailed { node: 17 });
        round_trip(TraceEvent::NodeRepaired { node: 17 });
        round_trip(TraceEvent::TunerTransition(Box::new(TunerTransitionEv {
            tunable: "balance_factor".into(),
            metric: "queue_depth_mins".into(),
            value: 1.5e6,
            threshold: 1.0e6,
            step: 0.5,
            lo: 0.5,
            hi: 1.0,
            dir: "minus".into(),
            bf_before: 1.0,
            bf_after: 0.5,
            window_before: 1,
            window_after: 1,
        })));
        round_trip(TraceEvent::OrderingSwitch {
            queue_len: 42,
            ordering: "lf".into(),
        });
        round_trip(TraceEvent::MetricsSample(Box::new(MetricsSampleEv {
            queue_depth_mins: 123.0,
            util_instant: 0.9,
            util_1h: 0.85,
            util_10h: 0.8,
            util_24h: 0.75,
            down_nodes: 3,
            running: 17,
            waiting: 4,
        })));
    }

    #[test]
    fn tag_and_job_id_accessors() {
        let ev = TraceEvent::JobStarted {
            job: 9,
            nodes: 1,
            backfilled: false,
            wait_s: 0,
        };
        assert_eq!(ev.tag(), "job_started");
        assert_eq!(ev.job_id(), Some(9));
        let ev = TraceEvent::NodeFailed { node: 1 };
        assert_eq!(ev.job_id(), None);
        let ev = TraceEvent::WindowChoice(Box::new(WindowChoiceEv {
            window: 0,
            jobs: vec![1, 2],
            order: vec![1, 2],
            starts_now: 2,
            makespan_s: 0,
            searched: 0,
            fast_path: true,
            losers: vec![],
        }));
        assert_eq!(ev.window_jobs(), &[1, 2]);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert!(TraceRecord::from_json_line(r#"{"i":0,"t":0,"e":"nope"}"#).is_err());
    }
}
