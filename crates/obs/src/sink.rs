//! Trace sinks: where decision records go.
//!
//! The runner never knows which sink is attached — it hands each
//! [`TraceRecord`] to a `dyn TraceSink`. Three sinks ship:
//!
//! * [`RingSink`] — a fixed-capacity wrap-around buffer. Records
//!   overwrite the oldest once full, so memory stays bounded no matter
//!   how long the run is; the tail is dumped as JSONL at the end. The
//!   buffer is preallocated once, giving the cheapest enabled-tracing
//!   path (the `ablation_obs` bench holds it under 5% overhead).
//! * [`JsonlSink`] — serializes every record to a buffered writer as it
//!   happens. Complete, durable, and the input format of
//!   `trace explain`.
//! * [`VecSink`] — collects records in memory for tests.

use std::io::{self, Write};

use crate::event::TraceRecord;

/// Receives every emitted trace record.
pub trait TraceSink {
    /// Accept one record. Called on the simulation hot path — sinks
    /// should defer expensive work where possible.
    fn record(&mut self, rec: &TraceRecord);

    /// Flush any buffered output (end of run, or before inspection).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// Fixed-capacity wrap-around buffer of the most recent records.
///
/// Single-writer and allocation-free after the initial reserve (record
/// payloads may still own heap data, but the slot array never grows) —
/// the "lock-free-ish" always-on flight recorder: keep it attached for
/// the whole run, dump the tail only when something needs explaining.
pub struct RingSink {
    slots: Vec<Option<TraceRecord>>,
    /// Next slot to write (monotonically increasing; slot = head % cap).
    head: u64,
}

impl RingSink {
    /// A ring holding the last `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        RingSink { slots, head: 0 }
    }

    /// Total records ever written (not just retained).
    pub fn total_recorded(&self) -> u64 {
        self.head
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.head.saturating_sub(self.slots.len() as u64)
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> Vec<&TraceRecord> {
        let cap = self.slots.len() as u64;
        let len = self.head.min(cap);
        let start = self.head - len;
        (start..self.head)
            .filter_map(|i| self.slots[(i % cap) as usize].as_ref())
            .collect()
    }

    /// Serialize the retained tail as JSONL (oldest first).
    pub fn tail_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.tail() {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        let cap = self.slots.len() as u64;
        self.slots[(self.head % cap) as usize] = Some(rec.clone());
        self.head += 1;
    }
}

// ---------------------------------------------------------------------------
// JSONL writer
// ---------------------------------------------------------------------------

/// Serializes every record as one JSON object per line.
pub struct JsonlSink<W: Write> {
    out: W,
    /// Records written so far.
    written: u64,
    /// Reused line buffer (avoids one allocation per record).
    buf: String,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer (pass a `BufWriter` for file output).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            written: 0,
            buf: String::new(),
        }
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        self.buf.clear();
        self.buf.push_str(&rec.to_json_line());
        self.buf.push('\n');
        // A tracing run that can no longer trace must fail loudly, like
        // a checkpointing run that can no longer checkpoint.
        self.out
            .write_all(self.buf.as_bytes())
            .unwrap_or_else(|e| panic!("trace write failed after {} records: {e}", self.written));
        self.written += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

// ---------------------------------------------------------------------------
// Test sink
// ---------------------------------------------------------------------------

/// Collects every record in memory; for tests and `explain` pipelines.
#[derive(Default)]
pub struct VecSink {
    /// All records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty collector.
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            index: i,
            t: i as i64,
            event: TraceEvent::NodeFailed { node: i },
        }
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&rec(i));
        }
        assert_eq!(ring.total_recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let tail: Vec<u64> = ring.tail().iter().map(|r| r.index).collect();
        assert_eq!(tail, vec![2, 3, 4]);
        let jsonl = ring.tail_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.lines().next().unwrap().contains("\"i\":2"));
    }

    #[test]
    fn ring_partial_fill() {
        let mut ring = RingSink::new(8);
        ring.record(&rec(0));
        ring.record(&rec(1));
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.tail().len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(7));
        sink.record(&rec(8));
        sink.flush().unwrap();
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(sink.out).unwrap();
        let parsed: Vec<TraceRecord> = text
            .lines()
            .map(|l| TraceRecord::from_json_line(l).unwrap())
            .collect();
        assert_eq!(parsed, vec![rec(7), rec(8)]);
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::new();
        sink.record(&rec(1));
        assert_eq!(sink.records.len(), 1);
    }
}
