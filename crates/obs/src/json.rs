//! Minimal hand-rolled JSON: a push-style object writer for the JSONL
//! trace emitter and a small recursive-descent parser for `trace
//! explain`.
//!
//! The writer produces deterministic output: fields appear in insertion
//! order, floats render with Rust's shortest round-trip formatting, and
//! nothing depends on hashing or wall-clock state. The parser accepts
//! exactly the subset the writer produces (plus whitespace), which is
//! all `trace explain` ever reads back.

use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append `s` to `out` as a JSON string literal (with escaping).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as JSON. Non-finite values (which JSON cannot
/// represent) render as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Builds one flat-ish JSON object (nested arrays/objects are written
/// through the `raw` escape hatch). Keeps the trace emitter free of
/// format-string noise.
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Start an object: `{`.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// `"k":"v"` with escaping.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        push_str_escaped(&mut self.buf, v);
        self
    }

    /// `"k":123`.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// `"k":-12`.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// `"k":0.5` (non-finite → `null`).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    /// `"k":true`.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// `"k":[1,2,3]` from a u64 slice.
    pub fn u64_arr(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// `"k":<already-serialized JSON>` — the caller guarantees validity.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the serialized form.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep their key order (a `Vec`, not a
/// map) so tests can assert on the writer's deterministic field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`; trace integers fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Signed integer value, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 => {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs never appear in our traces;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_ordered_fields() {
        let mut w = ObjWriter::new();
        w.u64("i", 7).str("e", "job_scored").f64("p", 0.5);
        assert_eq!(w.finish(), r#"{"i":7,"e":"job_scored","p":0.5}"#);
    }

    #[test]
    fn writer_escapes_strings() {
        let mut w = ObjWriter::new();
        w.str("s", "a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#"{"s":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn writer_arrays_and_raw() {
        let mut w = ObjWriter::new();
        w.u64_arr("xs", &[1, 2, 3]).raw("o", r#"{"k":true}"#);
        assert_eq!(w.finish(), r#"{"xs":[1,2,3],"o":{"k":true}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = ObjWriter::new();
        w.f64("x", f64::NAN).f64("y", f64::INFINITY);
        assert_eq!(w.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = ObjWriter::new();
        w.u64("i", 42)
            .str("e", "window_choice")
            .f64("m", -1.25)
            .bool("fast", true)
            .u64_arr("jobs", &[5, 9]);
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("i").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("e").unwrap().as_str(), Some("window_choice"));
        assert_eq!(v.get("m").unwrap().as_f64(), Some(-1.25));
        assert_eq!(v.get("fast").unwrap().as_bool(), Some(true));
        let jobs = v.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(jobs[1].as_u64(), Some(9));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_handles_nesting_and_escapes() {
        let v = parse(r#"{"a":[{"b":"x\ny"},null],"c":-3e2}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-300.0));
    }

    #[test]
    fn integer_accessors_guard_precision() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
