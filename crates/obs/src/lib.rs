//! Observability for `amjs`: decision tracing, span-based
//! self-profiling, and live metrics exposition.
//!
//! The layer is hand-rolled (zero external dependencies, like the rest
//! of the workspace) and strictly pay-for-what-you-use:
//!
//! * **Decision tracing** ([`event`], [`sink`]) — structured records of
//!   every scheduling decision: per-job score breakdowns (paper
//!   eqs. 1–3), window-permutation choices with the losing
//!   permutations' makespans, backfill accept/reject reasons, adaptive
//!   tuner transitions, and the failure/repair/retry lifecycle. Each
//!   record carries the engine event index, so traces line up exactly
//!   with the persistence journal and `replay`.
//! * **Explain** ([`explain`]) — reconstruct one job's decision chain
//!   from a JSONL trace into a human-readable timeline
//!   (`amjs trace explain`).
//! * **Self-profiling** ([`profile`]) — hierarchical wall-clock spans
//!   around the hot paths, aggregated into a table and JSON.
//! * **Live exposition** ([`expo`]) — a `std::net` HTTP listener
//!   serving Prometheus text format plus a throttled stderr heartbeat.
//!
//! Everything funnels through one [`Observer`] handle; with nothing
//! attached it costs a counter increment per event and guarantees
//! byte-identical simulation outputs.

#![warn(missing_docs)]

pub mod event;
pub mod explain;
pub mod expo;
pub mod json;
pub mod observer;
pub mod profile;
pub mod sink;

pub use event::{
    BackfillReason, LosingPerm, MetricsSampleEv, RetryOutcome, TraceEvent, TraceRecord,
    TunerTransitionEv, WindowChoiceEv,
};
pub use explain::{explain_job, parse_trace, read_trace};
pub use expo::{prometheus_text, shared_stats, Heartbeat, LiveStats, MetricsServer, SharedStats};
pub use observer::{Observer, SharedProfiler, SharedSink};
pub use profile::{Profiler, SpanStats, SpanToken};
pub use sink::{JsonlSink, RingSink, TraceSink, VecSink};
