//! Live metrics exposition: a tiny `std::net` HTTP listener serving
//! Prometheus text format, plus a throttled stderr heartbeat.
//!
//! The simulation thread publishes the paper's monitored signals
//! (queue depth, instant/1H/10H/24H utilization, down nodes, jobs
//! running/waiting) into a mutex-guarded [`LiveStats`]; a background
//! thread answers `GET /metrics` with exposition-format text
//! (version 0.0.4). The server only *reads* shared state — it can
//! never perturb the simulation, so determinism guarantees hold with
//! the endpoint enabled.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The monitored signals, as last published by the simulation thread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LiveStats {
    /// Simulated time, seconds since the epoch.
    pub sim_time_s: i64,
    /// Engine events handled so far.
    pub events: u64,
    /// Aggregate queue demand, node-minutes.
    pub queue_depth_mins: f64,
    /// Instant utilization.
    pub util_instant: f64,
    /// Trailing 1-hour utilization.
    pub util_1h: f64,
    /// Trailing 10-hour utilization.
    pub util_10h: f64,
    /// Trailing 24-hour utilization.
    pub util_24h: f64,
    /// Nodes currently down.
    pub down_nodes: u64,
    /// Jobs running.
    pub running: u64,
    /// Jobs waiting in the queue.
    pub waiting: u64,
    /// True once the run has finished.
    pub done: bool,
    /// Replication posture, when the publisher is a serve daemon in a
    /// replicated topology (`None` for batch runs and standalone
    /// daemons started before the gauges are first published).
    pub repl: Option<ReplStats>,
    /// Additional publisher-defined gauges, rendered verbatim as
    /// `amjs_<name> <value>`. The serve daemon uses this for its
    /// connection/shedding/what-if latency dashboard; batch runs leave
    /// it empty.
    pub extra: Vec<(String, f64)>,
}

/// The serve daemon's replication posture: role, epoch, attached
/// followers, and how far behind the primary a follower is running.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplStats {
    /// 1 = primary, 2 = follower (gauge-friendly encoding).
    pub role: u8,
    /// Current failover epoch.
    pub epoch: u64,
    /// Followers attached to this daemon's record stream.
    pub followers: u64,
    /// Records the primary has logged that this follower has not yet
    /// applied (0 on a primary).
    pub lag_records: u64,
    /// WAL sequence the next local append will get.
    pub last_seq: u64,
}

/// Shared handle the simulation publishes into and the server reads.
pub type SharedStats = Arc<Mutex<LiveStats>>;

/// A fresh all-zero [`SharedStats`].
pub fn shared_stats() -> SharedStats {
    Arc::new(Mutex::new(LiveStats::default()))
}

/// Render `stats` in Prometheus exposition text format (version 0.0.4).
pub fn prometheus_text(stats: &LiveStats) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: f64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        if value.fract() == 0.0 && value.abs() < 1e15 {
            out.push_str(&format!("{name} {}\n", value as i64));
        } else {
            out.push_str(&format!("{name} {value}\n"));
        }
    };
    gauge(
        "amjs_sim_time_seconds",
        "Simulated time since the epoch.",
        stats.sim_time_s as f64,
    );
    gauge(
        "amjs_events_total",
        "Engine events handled so far.",
        stats.events as f64,
    );
    gauge(
        "amjs_queue_depth_minutes",
        "Aggregate queue demand in node-minutes (paper Fig. 5 signal).",
        stats.queue_depth_mins,
    );
    gauge(
        "amjs_utilization_instant",
        "Instant system utilization.",
        stats.util_instant,
    );
    gauge(
        "amjs_utilization_1h",
        "Trailing 1-hour utilization.",
        stats.util_1h,
    );
    gauge(
        "amjs_utilization_10h",
        "Trailing 10-hour utilization.",
        stats.util_10h,
    );
    gauge(
        "amjs_utilization_24h",
        "Trailing 24-hour utilization.",
        stats.util_24h,
    );
    gauge(
        "amjs_down_nodes",
        "Nodes currently failed or awaiting repair.",
        stats.down_nodes as f64,
    );
    gauge(
        "amjs_jobs_running",
        "Jobs currently running.",
        stats.running as f64,
    );
    gauge(
        "amjs_jobs_waiting",
        "Jobs currently waiting in the queue.",
        stats.waiting as f64,
    );
    gauge(
        "amjs_run_done",
        "1 once the simulation has finished.",
        if stats.done { 1.0 } else { 0.0 },
    );
    if let Some(repl) = &stats.repl {
        gauge(
            "amjs_repl_role",
            "Replication role: 1 = primary, 2 = follower.",
            repl.role as f64,
        );
        gauge(
            "amjs_repl_epoch",
            "Current failover epoch (bumped on promotion).",
            repl.epoch as f64,
        );
        gauge(
            "amjs_repl_followers",
            "Followers attached to this daemon's record stream.",
            repl.followers as f64,
        );
        gauge(
            "amjs_repl_lag_records",
            "Primary records not yet applied locally (0 on a primary).",
            repl.lag_records as f64,
        );
        gauge(
            "amjs_repl_wal_seq",
            "WAL sequence the next local append will get.",
            repl.last_seq as f64,
        );
    }
    for (name, value) in &stats.extra {
        gauge(&format!("amjs_{name}"), "Publisher-defined gauge.", *value);
    }
    out
}

/// The background HTTP listener behind `--metrics-addr`.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// start answering `GET /metrics` with the current `stats`.
    pub fn bind(addr: impl ToSocketAddrs, stats: SharedStats) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("amjs-metrics".into())
            .spawn(move || serve(listener, stats, stop2))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: TcpListener, stats: SharedStats, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        handle_conn(&mut stream, &stats);
    }
}

fn handle_conn(stream: &mut TcpStream, stats: &SharedStats) {
    // Read until the end of the request head (or give up); only the
    // request line matters.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, body, content_type) = if method != "GET" {
        (
            "405 Method Not Allowed",
            String::from("method not allowed\n"),
            "text/plain; charset=utf-8",
        )
    } else if path == "/metrics" || path == "/" {
        let snapshot = stats.lock().map(|s| s.clone()).unwrap_or_default();
        (
            "200 OK",
            prometheus_text(&snapshot),
            "text/plain; version=0.0.4; charset=utf-8",
        )
    } else {
        (
            "404 Not Found",
            String::from("try /metrics\n"),
            "text/plain; charset=utf-8",
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

/// Throttled stderr progress line. Wall-clock throttling keeps output
/// bounded regardless of simulation speed; the line never touches
/// stdout or any deterministic artifact.
pub struct Heartbeat {
    every: Duration,
    last: Option<Instant>,
}

impl Heartbeat {
    /// A heartbeat printing at most once per `every`.
    pub fn new(every: Duration) -> Self {
        Heartbeat { every, last: None }
    }

    /// Print a progress line if the throttle window has passed.
    pub fn maybe_beat(&mut self, stats: &LiveStats) {
        let now = Instant::now();
        if let Some(last) = self.last {
            if now.duration_since(last) < self.every {
                return;
            }
        }
        self.last = Some(now);
        eprintln!(
            "amjs: t={:.1}h events={} queue={:.0} node-min running={} waiting={} util24h={:.3} down={}",
            stats.sim_time_s as f64 / 3600.0,
            stats.events,
            stats.queue_depth_mins,
            stats.running,
            stats.waiting,
            stats.util_24h,
            stats.down_nodes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LiveStats {
        LiveStats {
            sim_time_s: 7200,
            events: 42,
            queue_depth_mins: 1234.5,
            util_instant: 0.5,
            util_1h: 0.6,
            util_10h: 0.7,
            util_24h: 0.8,
            down_nodes: 2,
            running: 10,
            waiting: 3,
            done: false,
            repl: None,
            extra: Vec::new(),
        }
    }

    #[test]
    fn extra_gauges_are_exposed_with_the_amjs_prefix() {
        let mut s = sample();
        s.extra.push(("serve_sheds_total".to_string(), 3.0));
        let text = prometheus_text(&s);
        assert!(text.contains("# TYPE amjs_serve_sheds_total gauge"));
        assert!(text.contains("amjs_serve_sheds_total 3"));
    }

    #[test]
    fn repl_gauges_appear_only_in_replicated_topologies() {
        let plain = prometheus_text(&sample());
        assert!(!plain.contains("amjs_repl_"));
        let mut s = sample();
        s.repl = Some(ReplStats {
            role: 2,
            epoch: 3,
            followers: 0,
            lag_records: 7,
            last_seq: 41,
        });
        let text = prometheus_text(&s);
        assert!(text.contains("amjs_repl_role 2"));
        assert!(text.contains("amjs_repl_epoch 3"));
        assert!(text.contains("amjs_repl_lag_records 7"));
        assert!(text.contains("amjs_repl_wal_seq 41"));
    }

    #[test]
    fn exposition_has_help_type_and_required_gauge() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# HELP amjs_utilization_24h "));
        assert!(text.contains("# TYPE amjs_utilization_24h gauge"));
        assert!(text.contains("amjs_utilization_24h 0.8"));
        assert!(text.contains("amjs_jobs_running 10"));
        // Every non-comment line is `name value` with a finite value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            assert!(name.starts_with("amjs_"), "bad metric name: {name}");
            let value: f64 = parts.next().unwrap().parse().unwrap();
            assert!(value.is_finite());
            assert_eq!(parts.next(), None);
        }
    }

    #[test]
    fn server_serves_metrics_and_shuts_down() {
        let stats = shared_stats();
        *stats.lock().unwrap() = sample();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&stats)).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("version=0.0.4"));
        assert!(response.contains("amjs_utilization_24h 0.8"));

        // Unknown path → 404; wrong method → 405.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));

        server.shutdown();
        // After shutdown the port stops answering (bind may be reused,
        // so just assert the call returns).
    }

    #[test]
    fn heartbeat_throttles() {
        let mut hb = Heartbeat::new(Duration::from_secs(3600));
        let s = sample();
        hb.maybe_beat(&s); // first beat prints
        let first = hb.last;
        hb.maybe_beat(&s); // throttled: timestamp unchanged
        assert_eq!(hb.last, first);
    }
}
