//! `trace explain`: reconstruct one job's full decision chain from a
//! JSONL trace file into a human-readable timeline.
//!
//! The chain follows the lifecycle queued → scored → windowed →
//! placed/backfilled (→ killed → retried …) → finished, with each step
//! tagged by its engine event index so it can be cross-referenced with
//! the journal and `replay`. Repetitive steps (a job is re-scored every
//! scheduling pass while it waits) are run-length compressed.

use std::fmt::Write as _;

use amjs_sim::SimTime;

use crate::event::{TraceEvent, TraceRecord};

/// Parse a whole JSONL trace. Line numbers in errors are 1-based.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(n, line)| {
            TraceRecord::from_json_line(line).map_err(|e| format!("line {}: {e}", n + 1))
        })
        .collect()
}

/// Read and parse a trace file.
pub fn read_trace(path: &std::path::Path) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_trace(&text)
}

/// Records relevant to `job`: directly about it, or window searches
/// that considered it.
pub fn records_for_job(records: &[TraceRecord], job: u64) -> Vec<&TraceRecord> {
    records
        .iter()
        .filter(|r| r.event.job_id() == Some(job) || r.event.window_jobs().contains(&job))
        .collect()
}

fn hms(secs: i64) -> String {
    SimTime::from_secs(secs).to_string()
}

fn describe(ev: &TraceEvent, job: u64) -> String {
    match ev {
        TraceEvent::JobQueued {
            nodes,
            walltime_s,
            resubmit,
            ..
        } => format!(
            "{}: {nodes} nodes, {} walltime",
            if *resubmit { "requeued (retry)" } else { "queued" },
            hms(*walltime_s),
        ),
        TraceEvent::JobScored {
            s_w,
            s_r,
            bf,
            priority,
            ..
        } => format!(
            "scored: S_p = {bf}*{s_w:.4} + {:.4}*{s_r:.4} = {priority:.4} (S_w={s_w:.4}, S_r={s_r:.4})",
            1.0 - bf
        ),
        TraceEvent::WindowChoice(wc) => {
            let pos = wc.jobs.iter().position(|j| *j == job).map(|p| p + 1);
            let mut s = format!(
                "window {} search over {} jobs (priority position {}): ",
                wc.window,
                wc.jobs.len(),
                pos.map_or_else(|| "?".into(), |p| p.to_string()),
            );
            if wc.fast_path {
                let _ = write!(
                    s,
                    "all {} start now in priority order; search skipped",
                    wc.starts_now
                );
            } else {
                let _ = write!(
                    s,
                    "chose order {:?} ({} start now, makespan {}), \
                     searched {} permutations, {} losers recorded",
                    wc.order,
                    wc.starts_now,
                    hms(wc.makespan_s),
                    wc.searched,
                    wc.losers.len(),
                );
            }
            s
        }
        TraceEvent::BackfillDecision {
            accepted, reason, ..
        } => {
            if *accepted {
                format!("backfill accepted ({})", reason.tag())
            } else {
                format!("backfill rejected ({})", reason.tag())
            }
        }
        TraceEvent::JobStarted {
            nodes,
            backfilled,
            wait_s,
            ..
        } => format!(
            "started on {nodes} nodes{} after waiting {}",
            if *backfilled { " via backfill" } else { "" },
            hms(*wait_s),
        ),
        TraceEvent::JobReserved { start_s, .. } => {
            format!("protected reservation: promised start at t={}", hms(*start_s))
        }
        TraceEvent::JobFinished { nodes, ran_s, .. } => {
            format!("finished: released {nodes} nodes after running {}", hms(*ran_s))
        }
        TraceEvent::JobKilled {
            attempt,
            lost_node_s,
            outcome,
            delay_s,
            ..
        } => {
            let mut s = format!(
                "killed by node failure on attempt {attempt} ({lost_node_s} node-s lost) -> {}",
                outcome.tag()
            );
            if *delay_s > 0 {
                let _ = write!(s, " after {}", hms(*delay_s));
            }
            s
        }
        // Not job-scoped; never reaches the timeline filter.
        other => other.tag().to_string(),
    }
}

/// Reconstruct the timeline for `job`.
///
/// Consecutive repetitions of the same step kind (re-scoring on every
/// pass, repeated window searches, repeated backfill rejections) are
/// compressed to first + last + a count.
pub fn explain_job(records: &[TraceRecord], job: u64) -> Result<String, String> {
    let relevant = records_for_job(records, job);
    if relevant.is_empty() {
        return Err(format!(
            "job#{job} does not appear in this trace ({} records scanned)",
            records.len()
        ));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "decision chain for job#{job} ({} steps)",
        relevant.len()
    );
    let _ = writeln!(out, "{}", "-".repeat(72));

    let mut i = 0;
    while i < relevant.len() {
        let rec = relevant[i];
        // Extent of the run of same-kind, same-outcome steps.
        let mut j = i + 1;
        while j < relevant.len() && same_kind(&rec.event, &relevant[j].event) {
            j += 1;
        }
        let line = |r: &TraceRecord| {
            format!(
                "[e{:>8} t={:>10}] {}",
                r.index,
                hms(r.t),
                describe(&r.event, job)
            )
        };
        if j - i <= 2 {
            for r in &relevant[i..j] {
                let _ = writeln!(out, "{}", line(r));
            }
        } else {
            let _ = writeln!(out, "{}", line(rec));
            let _ = writeln!(
                out,
                "{:>24}  ... {} similar steps omitted ...",
                "",
                j - i - 2
            );
            let _ = writeln!(out, "{}", line(relevant[j - 1]));
        }
        i = j;
    }

    let _ = writeln!(out, "{}", "-".repeat(72));
    let _ = writeln!(out, "summary: {}", summarize(&relevant, job));
    Ok(out)
}

/// Two events count as "the same step" for compression purposes when
/// they have the same tag and (for backfill) the same outcome.
fn same_kind(a: &TraceEvent, b: &TraceEvent) -> bool {
    match (a, b) {
        (
            TraceEvent::BackfillDecision {
                accepted: aa,
                reason: ra,
                ..
            },
            TraceEvent::BackfillDecision {
                accepted: ab,
                reason: rb,
                ..
            },
        ) => aa == ab && ra == rb,
        _ => a.tag() == b.tag(),
    }
}

fn summarize(relevant: &[&TraceRecord], job: u64) -> String {
    let count = |tag: &str| relevant.iter().filter(|r| r.event.tag() == tag).count();
    let queued = count("job_queued");
    let scored = count("job_scored");
    let windowed = count("window_choice");
    let killed = count("job_killed");
    let started: Vec<_> = relevant
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::JobStarted { backfilled, .. } => Some(*backfilled),
            _ => None,
        })
        .collect();
    let finished = count("job_finished") > 0;

    let mut s =
        format!("job#{job} queued {queued}x, scored {scored}x, in {windowed} window searches");
    if killed > 0 {
        let _ = write!(s, ", killed {killed}x");
    }
    match started.last() {
        Some(true) => s.push_str(", last start was a backfill"),
        Some(false) => s.push_str(", last start was in queue order"),
        None => s.push_str(", never started"),
    }
    s.push_str(if finished {
        ", finished"
    } else {
        ", did not finish in this trace"
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BackfillReason;

    fn rec(index: u64, t: i64, event: TraceEvent) -> TraceRecord {
        TraceRecord { index, t, event }
    }

    fn sample_trace() -> Vec<TraceRecord> {
        let scored = |i: u64, t: i64| {
            rec(
                i,
                t,
                TraceEvent::JobScored {
                    job: 5,
                    s_w: 0.5,
                    s_r: 0.25,
                    bf: 0.5,
                    priority: 0.375,
                },
            )
        };
        vec![
            rec(
                0,
                0,
                TraceEvent::JobQueued {
                    job: 5,
                    nodes: 64,
                    walltime_s: 3600,
                    resubmit: false,
                },
            ),
            scored(1, 60),
            scored(2, 120),
            scored(3, 180),
            scored(4, 240),
            rec(
                5,
                240,
                TraceEvent::WindowChoice(Box::new(crate::event::WindowChoiceEv {
                    window: 0,
                    jobs: vec![9, 5],
                    order: vec![5, 9],
                    starts_now: 2,
                    makespan_s: 4000,
                    searched: 1,
                    fast_path: false,
                    losers: vec![],
                })),
            ),
            rec(
                6,
                240,
                TraceEvent::JobStarted {
                    job: 5,
                    nodes: 64,
                    backfilled: false,
                    wait_s: 240,
                },
            ),
            rec(
                7,
                3840,
                TraceEvent::JobFinished {
                    job: 5,
                    nodes: 64,
                    ran_s: 3600,
                },
            ),
            // Unrelated job — must not appear.
            rec(
                8,
                4000,
                TraceEvent::JobStarted {
                    job: 9,
                    nodes: 8,
                    backfilled: true,
                    wait_s: 0,
                },
            ),
        ]
    }

    #[test]
    fn filters_by_job_including_window_membership() {
        let trace = sample_trace();
        let mine = records_for_job(&trace, 5);
        assert_eq!(mine.len(), 8); // everything except the job#9 start
        let other = records_for_job(&trace, 9);
        assert_eq!(other.len(), 2); // its own start + the shared window
    }

    #[test]
    fn explains_full_chain_with_compression() {
        let text = explain_job(&sample_trace(), 5).unwrap();
        assert!(text.contains("decision chain for job#5"));
        assert!(text.contains("queued: 64 nodes"));
        // 4 consecutive scored steps compress to first + last + omission.
        assert!(text.contains("similar steps omitted"));
        assert!(text.contains("window 0 search"));
        assert!(text.contains("started on 64 nodes after waiting 0:04:00"));
        assert!(text.contains("finished"));
        assert!(text.contains("scored 4x"));
        assert!(text.contains("last start was in queue order"));
    }

    #[test]
    fn unknown_job_is_an_error() {
        let err = explain_job(&sample_trace(), 777).unwrap_err();
        assert!(err.contains("job#777"));
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let good = sample_trace()[0].to_json_line();
        let text = format!("{good}\n\nnot json\n");
        let err = parse_trace(&text).unwrap_err();
        assert!(err.starts_with("line 3:"), "err={err}");
        let ok = parse_trace(&format!("{good}\n")).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn backfill_rejections_compress_only_same_reason() {
        let reject = |i: u64, reason| {
            rec(
                i,
                0,
                TraceEvent::BackfillDecision {
                    job: 1,
                    accepted: false,
                    reason,
                },
            )
        };
        let trace = vec![
            rec(
                0,
                0,
                TraceEvent::JobQueued {
                    job: 1,
                    nodes: 1,
                    walltime_s: 60,
                    resubmit: false,
                },
            ),
            reject(1, BackfillReason::NoStartNow),
            reject(2, BackfillReason::WouldDelayProtected),
        ];
        let text = explain_job(&trace, 1).unwrap();
        // Different reasons stay as separate lines.
        assert!(text.contains("no-feasible-start-now"));
        assert!(text.contains("would-delay-protected-reservation"));
    }
}
