//! The per-run result a sweep keeps: a compact, journal-serializable
//! digest of one [`SimulationOutcome`].
//!
//! A full outcome carries every sampled time series and per-job record
//! — far too heavy to journal for thousands of runs. The digest keeps
//! the Table-II summary plus the handful of whole-run numbers the
//! experiment binaries aggregate (queue-depth mean for threshold
//! calibration, failure/downtime accounting, pass counts for the
//! runs/s trajectory).

use amjs_core::runner::SimulationOutcome;
use amjs_metrics::{FaultDomain, MetricsSummary};
use amjs_sim::snapshot::{SnapError, SnapReader, SnapWriter};
use amjs_sim::SimDuration;

/// Whole-run numbers distilled from one simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct RunDigest {
    /// The Table-II-style summary.
    pub summary: MetricsSummary,
    /// Mean sampled queue depth in minutes (threshold calibration).
    pub queue_depth_mean: f64,
    /// Job interruptions caused by injected failures.
    pub interrupted_jobs: u64,
    /// Node-hours of progress destroyed by failures.
    pub lost_node_hours: f64,
    /// Smallest sampled in-service fraction of the machine (1.0 on a
    /// reliable machine).
    pub min_availability: f64,
    /// Label of the widest failure domain that actually faulted
    /// (`"-"` without failure injection).
    pub worst_domain: String,
    /// Scheduling passes executed (cost accounting, passes/s).
    pub scheduler_passes: u64,
    /// Jobs started via backfill.
    pub backfilled_starts: u64,
}

impl RunDigest {
    /// Distill an outcome.
    pub fn from_outcome(o: &SimulationOutcome) -> Self {
        let min_availability = o
            .availability
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(1.0f64, f64::min);
        let worst_domain = FaultDomain::ALL
            .iter()
            .rev()
            .find(|&&l| o.domain_downtime.level(l).faults > 0)
            .map(|l| l.label().to_string())
            .unwrap_or_else(|| "-".to_string());
        RunDigest {
            summary: o.summary.clone(),
            queue_depth_mean: o.queue_depth.mean_value().unwrap_or(0.0),
            interrupted_jobs: o.interrupted_jobs,
            lost_node_hours: o.lost_node_hours,
            min_availability,
            worst_domain,
            scheduler_passes: o.scheduler_passes,
            backfilled_starts: o.backfilled_starts,
        }
    }

    /// Append the digest's encoding to a snapshot writer.
    pub fn encode(&self, w: &mut SnapWriter) {
        let s = &self.summary;
        w.put_str(&s.label);
        w.put_usize(s.jobs_completed);
        w.put_f64(s.avg_wait_mins);
        w.put_f64(s.max_wait_mins);
        w.put_usize(s.unfair_jobs);
        w.put_f64(s.loc_percent);
        w.put_f64(s.avg_utilization);
        w.put_f64(s.mean_bounded_slowdown);
        w.put_i64(s.makespan.as_secs());
        w.put_f64(s.node_downtime_hours);
        w.put_usize(s.abandoned_jobs);
        w.put_f64(self.queue_depth_mean);
        w.put_u64(self.interrupted_jobs);
        w.put_f64(self.lost_node_hours);
        w.put_f64(self.min_availability);
        w.put_str(&self.worst_domain);
        w.put_u64(self.scheduler_passes);
        w.put_u64(self.backfilled_starts);
    }

    /// Decode a digest (inverse of [`RunDigest::encode`]).
    pub fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        let summary = MetricsSummary {
            label: r.get_str()?,
            jobs_completed: r.get_usize()?,
            avg_wait_mins: r.get_f64()?,
            max_wait_mins: r.get_f64()?,
            unfair_jobs: r.get_usize()?,
            loc_percent: r.get_f64()?,
            avg_utilization: r.get_f64()?,
            mean_bounded_slowdown: r.get_f64()?,
            makespan: SimDuration::from_secs(r.get_i64()?),
            node_downtime_hours: r.get_f64()?,
            abandoned_jobs: r.get_usize()?,
        };
        Ok(RunDigest {
            summary,
            queue_depth_mean: r.get_f64()?,
            interrupted_jobs: r.get_u64()?,
            lost_node_hours: r.get_f64()?,
            min_availability: r.get_f64()?,
            worst_domain: r.get_str()?,
            scheduler_passes: r.get_u64()?,
            backfilled_starts: r.get_u64()?,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample(label: &str) -> RunDigest {
        RunDigest {
            summary: MetricsSummary {
                label: label.to_string(),
                jobs_completed: 100,
                avg_wait_mins: 245.2,
                max_wait_mins: 900.0,
                unfair_jobs: 10,
                loc_percent: 15.7,
                avg_utilization: 0.81,
                mean_bounded_slowdown: 4.2,
                makespan: SimDuration::from_hours(720),
                node_downtime_hours: 12.5,
                abandoned_jobs: 2,
            },
            queue_depth_mean: 1034.0,
            interrupted_jobs: 3,
            lost_node_hours: 44.5,
            min_availability: 0.975,
            worst_domain: "rack".to_string(),
            scheduler_passes: 15_000,
            backfilled_starts: 800,
        }
    }

    #[test]
    fn digest_round_trips() {
        let d = sample("BF=0.5/W=4");
        let mut w = SnapWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = RunDigest::decode(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn digest_from_a_real_outcome() {
        let spec = amjs_core::RunSpec::new(
            "d",
            amjs_core::MachineSpec::Flat { nodes: 1024 },
            amjs_core::WorkloadSource::Preset {
                name: amjs_core::PresetName::Small,
                seed: 5,
                load_factor: 1.0,
            },
            amjs_core::PolicyParams::fcfs(),
        );
        let out = spec.execute();
        let d = RunDigest::from_outcome(&out);
        assert_eq!(d.summary, out.summary);
        assert_eq!(d.worst_domain, "-");
        assert_eq!(d.min_availability, 1.0);
        assert!(d.scheduler_passes > 0);
    }
}
