//! Deterministic sweep aggregation: the per-run + per-config CSV, the
//! sweep benchmark JSON, and the stdout table.
//!
//! Everything here is a pure function of the grid and its records,
//! iterated **in grid order** — never in completion order — so the
//! artifacts are byte-identical across worker counts, work-stealing
//! schedules, and interrupted-then-resumed sweeps. Wall-clock numbers
//! are deliberately kept out of the CSV (they live in the benchmark
//! JSON), because they are the one thing that legitimately differs
//! between two runs of the same grid.

use amjs_core::RunSpec;
use amjs_metrics::report;

use crate::engine::{FleetReport, RunRecord, RunStatus};

/// Pulls one aggregable metric out of a (successful) run record.
type MetricFn = fn(&RunRecord) -> f64;

/// One metric column aggregated per config: label + accessor.
const AGG_METRICS: &[(&str, MetricFn)] = &[
    ("avg_wait_mins", |r| digest(r).summary.avg_wait_mins),
    ("unfair_jobs", |r| digest(r).summary.unfair_jobs as f64),
    ("loc_percent", |r| digest(r).summary.loc_percent),
    ("avg_utilization", |r| digest(r).summary.avg_utilization),
    ("mean_bounded_slowdown", |r| {
        digest(r).summary.mean_bounded_slowdown
    }),
];

fn digest(r: &RunRecord) -> &crate::digest::RunDigest {
    r.digest
        .as_ref()
        .expect("aggregation over successful runs only")
}

/// The aggregated sweep CSV: a per-run section (one row per grid point,
/// with a status column) and a per-config aggregate section (mean ±
/// 95% confidence interval over that config's successful runs).
///
/// Grid points without a record (an interrupted sweep) are skipped; a
/// resumed-to-completion sweep therefore emits exactly the bytes the
/// uninterrupted sweep would have.
pub fn aggregate_csv(specs: &[RunSpec], records: &[Option<RunRecord>]) -> String {
    let mut out = String::new();
    out.push_str("key,status,attempts,");
    out.push_str(report::csv_header());
    out.push('\n');
    for (spec, rec) in specs.iter().zip(records) {
        let Some(rec) = rec else { continue };
        out.push_str(&format!(
            "{},{},{},",
            rec.key,
            rec.status.as_str(),
            rec.attempts
        ));
        match &rec.digest {
            Some(d) => out.push_str(&d.summary.csv_row()),
            // Degraded run: label only, metric cells empty.
            None => {
                out.push_str(&spec.label);
                out.push_str(&",".repeat(report::csv_header().matches(',').count()));
            }
        }
        out.push('\n');
    }

    out.push('\n');
    out.push_str("config,n");
    for (name, _) in AGG_METRICS {
        out.push_str(&format!(",{name}_mean,{name}_ci95"));
    }
    out.push('\n');
    for (label, group) in group_by_label(specs, records) {
        out.push_str(&format!("{label},{}", group.len()));
        for (_, get) in AGG_METRICS {
            let values: Vec<f64> = group.iter().map(|r| get(r)).collect();
            let (mean, ci) = mean_ci95(&values);
            out.push_str(&format!(",{mean:.4},{ci:.4}"));
        }
        out.push('\n');
    }
    out
}

/// Successful records grouped by config label, labels in grid
/// (first-appearance) order.
fn group_by_label<'a>(
    specs: &[RunSpec],
    records: &'a [Option<RunRecord>],
) -> Vec<(String, Vec<&'a RunRecord>)> {
    let mut groups: Vec<(String, Vec<&RunRecord>)> = Vec::new();
    for (spec, rec) in specs.iter().zip(records) {
        let Some(rec) = rec else { continue };
        if !rec.status.succeeded() {
            continue;
        }
        match groups.iter_mut().find(|(l, _)| *l == spec.label) {
            Some((_, g)) => g.push(rec),
            None => groups.push((spec.label.clone(), vec![rec])),
        }
    }
    groups
}

/// Sample mean and 95% confidence half-width (`1.96·s/√n`; zero for
/// fewer than two samples).
pub fn mean_ci95(values: &[f64]) -> (f64, f64) {
    let n = values.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    (mean, 1.96 * var.sqrt() / (n as f64).sqrt())
}

/// The sweep throughput benchmark artifact (`BENCH_sweep.json`):
/// run counts by status, worker count, wall clock, runs/s, aggregate
/// simulated scheduler passes/s, and per-run wall-clock quartiles.
pub fn bench_json(report: &FleetReport, records: &[Option<RunRecord>]) -> String {
    let recs: Vec<&RunRecord> = records.iter().flatten().collect();
    let count = |s: RunStatus| recs.iter().filter(|r| r.status == s).count();
    let wall_s = report.wall.as_secs_f64();
    let total_passes: u64 = recs
        .iter()
        .filter_map(|r| r.digest.as_ref())
        .map(|d| d.scheduler_passes)
        .sum();
    let mut walls: Vec<u64> = recs.iter().map(|r| r.wall_ms).collect();
    walls.sort_unstable();
    let q = |f: f64| -> u64 {
        if walls.is_empty() {
            return 0;
        }
        walls[((walls.len() - 1) as f64 * f).round() as usize]
    };
    format!(
        concat!(
            "{{\n",
            "  \"runs\": {},\n",
            "  \"ok\": {},\n",
            "  \"retried\": {},\n",
            "  \"timeout\": {},\n",
            "  \"failed\": {},\n",
            "  \"resumed\": {},\n",
            "  \"workers\": {},\n",
            "  \"wall_s\": {:.3},\n",
            "  \"runs_per_s\": {:.3},\n",
            "  \"aggregate_passes_per_s\": {:.1},\n",
            "  \"run_wall_ms\": {{ \"min\": {}, \"p25\": {}, \"p50\": {}, \"p75\": {}, \"max\": {} }}\n",
            "}}\n"
        ),
        recs.len(),
        count(RunStatus::Ok),
        count(RunStatus::Retried),
        count(RunStatus::Timeout),
        count(RunStatus::Failed),
        report.resumed,
        report.workers,
        wall_s,
        report.executed as f64 / wall_s.max(1e-9),
        total_passes as f64 / wall_s.max(1e-9),
        q(0.0),
        q(0.25),
        q(0.5),
        q(0.75),
        q(1.0),
    )
}

/// Human-readable sweep table for stdout: status + attempts + the
/// standard metrics table, one row per grid point in grid order.
pub fn render_table(specs: &[RunSpec], records: &[Option<RunRecord>]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<8} {:>3}  {}\n",
        "key",
        "status",
        "att",
        report::table_header()
    ));
    for (spec, rec) in specs.iter().zip(records) {
        match rec {
            None => out.push_str(&format!("{:<22} {:<8} {:>3}\n", spec.key, "pending", "-")),
            Some(rec) => {
                let tail = match &rec.digest {
                    Some(d) => d.summary.table_row(),
                    None => format!(
                        "{:<14} {}",
                        spec.label,
                        rec.error.as_deref().unwrap_or("no result")
                    ),
                };
                out.push_str(&format!(
                    "{:<22} {:<8} {:>3}  {}\n",
                    rec.key,
                    rec.status.as_str(),
                    rec.attempts,
                    tail
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amjs_core::{MachineSpec, PolicyParams, PresetName, WorkloadSource};
    use std::time::Duration;

    fn spec(key: &str, label: &str, seed: u64) -> RunSpec {
        RunSpec::new(
            key,
            MachineSpec::Flat { nodes: 64 },
            WorkloadSource::Preset {
                name: PresetName::Small,
                seed,
                load_factor: 1.0,
            },
            PolicyParams::fcfs(),
        )
        .labeled(label)
    }

    fn record(key: &str, label: &str, status: RunStatus, wait: f64) -> Option<RunRecord> {
        let digest = status.succeeded().then(|| {
            let mut d = crate::digest::tests::sample(label);
            d.summary.avg_wait_mins = wait;
            d
        });
        Some(RunRecord {
            key: key.to_string(),
            status,
            attempts: if status == RunStatus::Ok { 1 } else { 3 },
            wall_ms: 100,
            digest,
            error: (!status.succeeded()).then(|| "boom".to_string()),
        })
    }

    fn fixture() -> (Vec<RunSpec>, Vec<Option<RunRecord>>) {
        let specs = vec![
            spec("a-s1", "cfgA", 1),
            spec("a-s2", "cfgA", 2),
            spec("b-s1", "cfgB", 1),
            spec("b-s2", "cfgB", 2),
        ];
        let records = vec![
            record("a-s1", "cfgA", RunStatus::Ok, 100.0),
            record("a-s2", "cfgA", RunStatus::Retried, 200.0),
            record("b-s1", "cfgB", RunStatus::Ok, 50.0),
            record("b-s2", "cfgB", RunStatus::Failed, 0.0),
        ];
        (specs, records)
    }

    #[test]
    fn csv_has_status_column_and_grid_order() {
        let (specs, records) = fixture();
        let csv = aggregate_csv(&specs, &records);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("key,status,attempts,config,"));
        assert!(lines[1].starts_with("a-s1,ok,1,cfgA,"));
        assert!(lines[2].starts_with("a-s2,retried,3,cfgA,"));
        assert!(lines[3].starts_with("b-s1,ok,1,cfgB,"));
        // The failed run keeps its row — label present, metrics empty.
        assert!(lines[4].starts_with("b-s2,failed,3,cfgB,"));
        assert!(lines[4].ends_with(",,"));
        // Every per-run line has the same column count as the header.
        let cols = lines[0].matches(',').count();
        for line in &lines[1..5] {
            assert_eq!(line.matches(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn aggregates_mean_and_ci_over_successful_runs_only() {
        let (specs, records) = fixture();
        let csv = aggregate_csv(&specs, &records);
        let agg: Vec<&str> = csv.split("\n\n").nth(1).unwrap().lines().collect();
        assert!(agg[0].starts_with("config,n,avg_wait_mins_mean,avg_wait_mins_ci95"));
        // cfgA: two successes, waits 100 and 200 → mean 150, ci 1.96*sd/√2.
        let a: Vec<&str> = agg[1].split(',').collect();
        assert_eq!(a[0], "cfgA");
        assert_eq!(a[1], "2");
        assert_eq!(a[2], "150.0000");
        let sd = 70.710_678_118_654_76_f64; // sample sd of {100, 200}
        let ci: f64 = a[3].parse().unwrap();
        assert!((ci - 1.96 * sd / 2f64.sqrt()).abs() < 1e-3);
        // cfgB: the failed run is excluded → n = 1, ci 0.
        let b: Vec<&str> = agg[2].split(',').collect();
        assert_eq!(b[0], "cfgB");
        assert_eq!(b[1], "1");
        assert_eq!(b[2], "50.0000");
        assert_eq!(b[3], "0.0000");
    }

    #[test]
    fn mean_ci_edge_cases() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[7.0]), (7.0, 0.0));
        let (m, ci) = mean_ci95(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn bench_json_counts_statuses_and_quartiles() {
        let (_, records) = fixture();
        let report = FleetReport {
            records: records.clone(),
            resumed: 1,
            executed: 3,
            wall: Duration::from_secs(2),
            workers: 4,
        };
        let json = bench_json(&report, &records);
        assert!(json.contains("\"runs\": 4"));
        assert!(json.contains("\"ok\": 2"));
        assert!(json.contains("\"retried\": 1"));
        assert!(json.contains("\"failed\": 1"));
        assert!(json.contains("\"timeout\": 0"));
        assert!(json.contains("\"resumed\": 1"));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"runs_per_s\": 1.500"));
        assert!(json.contains("\"p50\": 100"));
    }

    #[test]
    fn table_marks_pending_and_degraded_rows() {
        let (specs, mut records) = fixture();
        records[2] = None;
        let table = render_table(&specs, &records);
        assert!(table.contains("pending"));
        assert!(table.contains("failed"));
        assert!(table.contains("boom"));
    }
}
