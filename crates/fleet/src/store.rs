//! Durable sweep progress: the manifest + append-only result journal
//! behind `amjs sweep --resume`.
//!
//! A sweep directory holds two files, both using the workspace snapshot
//! codec conventions (magic, version, FNV-1a checksums, atomic
//! tmp+rename for the manifest):
//!
//! * `sweep.manifest` — a snapshot file whose payload is the grid
//!   fingerprint plus the *full encoded grid* ([`amjs_core::RunSpec`]
//!   list). Resume therefore needs no flags: the manifest alone
//!   reconstructs the sweep.
//! * `sweep.journal` — an append-only record stream, one record per
//!   completed (or degraded) run: a fixed header stamped with the grid
//!   fingerprint, then `[u32 len][record payload][u64 FNV-1a of
//!   payload]` per record. Each record is flushed the moment its run
//!   finishes, so a crash loses at most the runs in flight.
//!
//! The reader tolerates a truncated or corrupt tail (the crash case):
//! good records up to that point are kept, the bad tail is truncated
//! away before the journal is reopened for append, and the resumed
//! sweep simply re-runs whatever was lost.

use std::collections::HashMap;
use std::fs;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use amjs_core::{grid_fingerprint, RunSpec};
use amjs_sim::snapshot::{fnv1a, read_snapshot_file, write_snapshot_file, SnapReader, SnapWriter};

use crate::engine::{FleetError, RunRecord};

/// Magic bytes opening a sweep result journal.
pub const SWEEP_JOURNAL_MAGIC: [u8; 8] = *b"AMJSFLT\0";
/// Journal format version this build writes and the highest it reads.
pub const SWEEP_JOURNAL_VERSION: u32 = 1;
/// Header: magic(8) + version(4) + grid fingerprint(8).
const JOURNAL_HEADER_LEN: usize = 20;

/// Manifest file name inside a sweep directory.
pub const MANIFEST_NAME: &str = "sweep.manifest";
/// Journal file name inside a sweep directory.
pub const JOURNAL_NAME: &str = "sweep.journal";

fn store_err(msg: impl Into<String>) -> FleetError {
    FleetError::Store(msg.into())
}

/// The durable side of a sweep: manifest + open result journal.
#[derive(Debug)]
pub struct SweepStore {
    dir: PathBuf,
    fingerprint: u64,
    completed: HashMap<String, RunRecord>,
    journal: Mutex<BufWriter<fs::File>>,
}

impl SweepStore {
    /// Start a fresh sweep in `dir`: write the manifest (grid
    /// fingerprint + full encoded grid) and create an empty journal.
    ///
    /// Refuses to overwrite an existing sweep — a directory that
    /// already holds a manifest belongs to `--resume`.
    pub fn create(dir: &Path, specs: &[RunSpec]) -> Result<SweepStore, FleetError> {
        let manifest = dir.join(MANIFEST_NAME);
        if manifest.exists() {
            return Err(store_err(format!(
                "{} already holds a sweep manifest; use --resume to continue it \
                 or point --sweep-dir at a fresh directory",
                dir.display()
            )));
        }
        fs::create_dir_all(dir)
            .map_err(|e| store_err(format!("cannot create {}: {e}", dir.display())))?;

        let fingerprint = grid_fingerprint(specs);
        let mut w = SnapWriter::new();
        w.put_u64(fingerprint);
        w.put_usize(specs.len());
        for spec in specs {
            spec.encode(&mut w);
        }
        write_snapshot_file(&manifest, w.as_bytes())
            .map_err(|e| store_err(format!("cannot write manifest: {e}")))?;

        let journal_path = dir.join(JOURNAL_NAME);
        let mut file = fs::File::create(&journal_path)
            .map_err(|e| store_err(format!("cannot create journal: {e}")))?;
        file.write_all(&SWEEP_JOURNAL_MAGIC)
            .and_then(|_| file.write_all(&SWEEP_JOURNAL_VERSION.to_le_bytes()))
            .and_then(|_| file.write_all(&fingerprint.to_le_bytes()))
            .and_then(|_| file.sync_all())
            .map_err(|e| store_err(format!("cannot write journal header: {e}")))?;

        Ok(SweepStore {
            dir: dir.to_path_buf(),
            fingerprint,
            completed: HashMap::new(),
            journal: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Resume the sweep in `dir`: decode the grid from the manifest,
    /// replay the journal's good prefix into the completed-run table,
    /// truncate any crash-damaged tail, and reopen the journal for
    /// append.
    pub fn resume(dir: &Path) -> Result<(Vec<RunSpec>, SweepStore), FleetError> {
        let manifest = dir.join(MANIFEST_NAME);
        let payload = read_snapshot_file(&manifest)
            .map_err(|e| store_err(format!("cannot read manifest {}: {e}", manifest.display())))?;
        let mut r = SnapReader::new(&payload);
        let parse = |e| store_err(format!("manifest {} is malformed: {e}", manifest.display()));
        let fingerprint = r.get_u64().map_err(parse)?;
        let count = r.get_usize().map_err(parse)?;
        let mut specs = Vec::with_capacity(count);
        for _ in 0..count {
            specs.push(RunSpec::decode(&mut r).map_err(parse)?);
        }
        if grid_fingerprint(&specs) != fingerprint {
            return Err(store_err(format!(
                "manifest {} fingerprint does not match its own grid (corrupt manifest)",
                manifest.display()
            )));
        }

        let journal_path = dir.join(JOURNAL_NAME);
        let (completed, good_len) = read_journal(&journal_path, fingerprint)?;

        let mut file = fs::OpenOptions::new()
            .write(true)
            .open(&journal_path)
            .map_err(|e| store_err(format!("cannot reopen journal: {e}")))?;
        // Drop a crash-truncated tail so the next append starts on a
        // clean record boundary.
        file.set_len(good_len)
            .and_then(|_| file.seek(SeekFrom::End(0)))
            .map_err(|e| store_err(format!("cannot truncate journal tail: {e}")))?;

        Ok((
            specs,
            SweepStore {
                dir: dir.to_path_buf(),
                fingerprint,
                completed,
                journal: Mutex::new(BufWriter::new(file)),
            },
        ))
    }

    /// The sweep directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The grid fingerprint stamped into manifest and journal.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Records recovered from the journal, by run key.
    pub fn completed(&self) -> &HashMap<String, RunRecord> {
        &self.completed
    }

    /// Journal one finished run: length-prefixed, checksummed, flushed
    /// immediately so a crash right after still finds it on resume.
    pub fn append(&self, rec: &RunRecord) -> Result<(), FleetError> {
        let mut w = SnapWriter::new();
        rec.encode(&mut w);
        let payload = w.into_bytes();
        let checksum = fnv1a(&payload);

        let mut journal = self.journal.lock().unwrap();
        journal
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|_| journal.write_all(&payload))
            .and_then(|_| journal.write_all(&checksum.to_le_bytes()))
            .and_then(|_| journal.flush())
            .map_err(|e| store_err(format!("journal append failed: {e}")))
    }
}

/// Read a sweep journal, returning the recovered records and the byte
/// length of the good prefix (everything after it is crash damage to
/// truncate). Header problems are hard errors; record-level damage is
/// tolerated.
fn read_journal(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<(HashMap<String, RunRecord>, u64), FleetError> {
    let content = fs::read(path)
        .map_err(|e| store_err(format!("cannot read journal {}: {e}", path.display())))?;
    if content.len() < JOURNAL_HEADER_LEN {
        return Err(store_err(format!(
            "journal {} is shorter than its header",
            path.display()
        )));
    }
    if content[..8] != SWEEP_JOURNAL_MAGIC {
        return Err(store_err(format!(
            "{} is not a sweep journal (bad magic)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(content[8..12].try_into().unwrap());
    if version > SWEEP_JOURNAL_VERSION {
        return Err(store_err(format!(
            "journal format version {version} is newer than this build supports \
             (max {SWEEP_JOURNAL_VERSION})"
        )));
    }
    let fingerprint = u64::from_le_bytes(content[12..20].try_into().unwrap());
    if fingerprint != expected_fingerprint {
        return Err(store_err(format!(
            "journal fingerprint {fingerprint:#018x} does not match the manifest \
             ({expected_fingerprint:#018x}); the journal belongs to a different grid"
        )));
    }

    let mut completed = HashMap::new();
    let mut pos = JOURNAL_HEADER_LEN;
    loop {
        let rest = &content[pos..];
        if rest.len() < 4 {
            break; // truncated length prefix
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len + 8 {
            break; // truncated payload or checksum
        }
        let payload = &rest[4..4 + len];
        let stored = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
        if fnv1a(payload) != stored {
            break; // corrupt record: drop it and everything after
        }
        let Ok(rec) = RunRecord::decode(&mut SnapReader::new(payload)) else {
            break;
        };
        completed.insert(rec.key.clone(), rec);
        pos += 4 + len + 8;
    }
    Ok((completed, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunStatus;
    use amjs_core::{MachineSpec, PolicyParams, PresetName, WorkloadSource};

    fn spec(key: &str, seed: u64) -> RunSpec {
        RunSpec::new(
            key,
            MachineSpec::Flat { nodes: 64 },
            WorkloadSource::Preset {
                name: PresetName::Small,
                seed,
                load_factor: 1.0,
            },
            PolicyParams::fcfs(),
        )
    }

    fn record(key: &str, status: RunStatus) -> RunRecord {
        RunRecord {
            key: key.to_string(),
            status,
            attempts: 1,
            wall_ms: 42,
            digest: status
                .succeeded()
                .then(|| crate::digest::tests::sample(key)),
            error: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("amjs-fleet-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_then_resume_recovers_records_and_grid() {
        let dir = tmp_dir("roundtrip");
        let specs = vec![spec("a", 1), spec("b", 2), spec("c", 3)];
        let store = SweepStore::create(&dir, &specs).unwrap();
        store.append(&record("a", RunStatus::Ok)).unwrap();
        store.append(&record("c", RunStatus::Failed)).unwrap();
        drop(store);

        let (resumed_specs, resumed) = SweepStore::resume(&dir).unwrap();
        assert_eq!(resumed_specs, specs);
        assert_eq!(resumed.completed().len(), 2);
        assert_eq!(resumed.completed()["a"].status, RunStatus::Ok);
        assert_eq!(resumed.completed()["c"].status, RunStatus::Failed);
        assert!(!resumed.completed().contains_key("b"));

        // Appending after resume keeps the journal readable.
        resumed.append(&record("b", RunStatus::Retried)).unwrap();
        drop(resumed);
        let (_, again) = SweepStore::resume(&dir).unwrap();
        assert_eq!(again.completed().len(), 3);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_sweep() {
        let dir = tmp_dir("exists");
        let specs = vec![spec("a", 1)];
        SweepStore::create(&dir, &specs).unwrap();
        let err = SweepStore::create(&dir, &specs).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_journal_tail_is_dropped_not_fatal() {
        let dir = tmp_dir("truncated");
        let specs = vec![spec("a", 1), spec("b", 2)];
        let store = SweepStore::create(&dir, &specs).unwrap();
        store.append(&record("a", RunStatus::Ok)).unwrap();
        store.append(&record("b", RunStatus::Ok)).unwrap();
        drop(store);

        // Simulate a crash mid-append: chop bytes off the second record.
        let journal = dir.join(JOURNAL_NAME);
        let raw = fs::read(&journal).unwrap();
        fs::write(&journal, &raw[..raw.len() - 5]).unwrap();

        let (_, resumed) = SweepStore::resume(&dir).unwrap();
        assert_eq!(
            resumed.completed().len(),
            1,
            "only the intact record survives"
        );
        assert!(resumed.completed().contains_key("a"));

        // The damaged tail was truncated away: appends land cleanly.
        resumed.append(&record("b", RunStatus::Ok)).unwrap();
        drop(resumed);
        let (_, again) = SweepStore::resume(&dir).unwrap();
        assert_eq!(again.completed().len(), 2);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_checksum_stops_recovery_at_the_damage() {
        let dir = tmp_dir("corrupt");
        let specs = vec![spec("a", 1)];
        let store = SweepStore::create(&dir, &specs).unwrap();
        store.append(&record("a", RunStatus::Ok)).unwrap();
        drop(store);

        let journal = dir.join(JOURNAL_NAME);
        let mut raw = fs::read(&journal).unwrap();
        // Flip a bit inside the record payload (past header + length).
        let idx = JOURNAL_HEADER_LEN + 4 + 2;
        raw[idx] ^= 0x10;
        fs::write(&journal, &raw).unwrap();

        let (_, resumed) = SweepStore::resume(&dir).unwrap();
        assert!(
            resumed.completed().is_empty(),
            "the damaged record is not trusted"
        );

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_from_a_different_grid_is_rejected() {
        let dir = tmp_dir("mismatch");
        let store = SweepStore::create(&dir, &[spec("a", 1)]).unwrap();
        drop(store);

        // Overwrite the manifest with a different grid; the journal's
        // fingerprint no longer matches.
        fs::remove_file(dir.join(MANIFEST_NAME)).unwrap();
        let other = vec![spec("z", 9)];
        let mut w = SnapWriter::new();
        w.put_u64(grid_fingerprint(&other));
        w.put_usize(other.len());
        other[0].encode(&mut w);
        write_snapshot_file(&dir.join(MANIFEST_NAME), w.as_bytes()).unwrap();

        let err = SweepStore::resume(&dir).unwrap_err();
        assert!(err.to_string().contains("different grid"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
