//! The supervised work-stealing execution engine.
//!
//! A fixed pool of supervisor workers (`std::thread::scope`) pulls grid
//! points from one shared injector queue — an idle worker always steals
//! the next pending run, so the schedule load-balances regardless of
//! per-run cost. Each run is executed under supervision:
//!
//! * panics are caught (`catch_unwind`) and become [`RunFailure::Panicked`];
//! * with a deadline configured, the attempt runs on a dedicated thread
//!   the supervisor waits on with a timeout; an overrunning attempt is
//!   abandoned (std threads cannot be force-killed — the stray thread
//!   is detached and its eventual result discarded) and becomes
//!   [`RunFailure::TimedOut`];
//! * failures are retried with exponential backoff up to the attempt
//!   budget, then recorded as degraded (`timeout`/`failed`) — the sweep
//!   itself keeps going.
//!
//! Results are journaled through the optional [`SweepStore`] the moment
//! they complete, so a crash loses at most the runs in flight.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use amjs_core::RunSpec;
use amjs_sim::snapshot::{Fnv1a, SnapError, SnapReader, SnapWriter};

use crate::digest::RunDigest;
use crate::store::SweepStore;

/// How a sweep executes one grid point.
pub type Exec = Arc<dyn Fn(&RunSpec) -> RunDigest + Send + Sync + 'static>;

/// The production executor: run the simulation, distill the digest.
pub fn default_exec() -> Exec {
    Arc::new(|spec| RunDigest::from_outcome(&spec.execute()))
}

/// Why one attempt of a run did not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunFailure {
    /// The simulation panicked (oracle trip, workload load failure, a
    /// bug); the payload message is preserved.
    Panicked(String),
    /// The attempt overran its wall-clock deadline and was abandoned.
    TimedOut(Duration),
}

impl RunFailure {
    fn message(&self) -> String {
        match self {
            RunFailure::Panicked(msg) => format!("panicked: {msg}"),
            RunFailure::TimedOut(limit) => {
                format!("timed out after {:.1}s", limit.as_secs_f64())
            }
        }
    }
}

/// Final disposition of one grid point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Completed on the first attempt.
    Ok,
    /// Completed after at least one failed attempt.
    Retried,
    /// Every attempt overran the deadline; no result.
    Timeout,
    /// Every attempt failed, the last one by panic; no result.
    Failed,
}

impl RunStatus {
    /// The CSV status-column spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Retried => "retried",
            RunStatus::Timeout => "timeout",
            RunStatus::Failed => "failed",
        }
    }

    /// Whether the run produced a digest.
    pub fn succeeded(&self) -> bool {
        matches!(self, RunStatus::Ok | RunStatus::Retried)
    }

    fn to_tag(self) -> u8 {
        match self {
            RunStatus::Ok => 0,
            RunStatus::Retried => 1,
            RunStatus::Timeout => 2,
            RunStatus::Failed => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapError> {
        Ok(match tag {
            0 => RunStatus::Ok,
            1 => RunStatus::Retried,
            2 => RunStatus::Timeout,
            3 => RunStatus::Failed,
            other => {
                return Err(SnapError::UnsupportedVersion {
                    found: other as u32,
                    supported: 3,
                })
            }
        })
    }
}

/// The journaled record of one completed (or degraded) grid point.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// The grid point's key.
    pub key: String,
    /// Final disposition.
    pub status: RunStatus,
    /// Attempts consumed (1 = first try).
    pub attempts: u32,
    /// Wall-clock milliseconds across all attempts (includes backoff).
    pub wall_ms: u64,
    /// The result (`None` for `timeout`/`failed`).
    pub digest: Option<RunDigest>,
    /// The last failure message, if any attempt failed.
    pub error: Option<String>,
}

impl RunRecord {
    /// Append the record's encoding to a snapshot writer.
    pub fn encode(&self, w: &mut SnapWriter) {
        w.put_str(&self.key);
        w.put_u8(self.status.to_tag());
        w.put_u32(self.attempts);
        w.put_u64(self.wall_ms);
        match &self.digest {
            None => w.put_u8(0),
            Some(d) => {
                w.put_u8(1);
                d.encode(w);
            }
        }
        match &self.error {
            None => w.put_u8(0),
            Some(e) => {
                w.put_u8(1);
                w.put_str(e);
            }
        }
    }

    /// Decode one record (inverse of [`RunRecord::encode`]).
    pub fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        let key = r.get_str()?;
        let status = RunStatus::from_tag(r.get_u8()?)?;
        let attempts = r.get_u32()?;
        let wall_ms = r.get_u64()?;
        let digest = match r.get_u8()? {
            0 => None,
            _ => Some(RunDigest::decode(r)?),
        };
        let error = match r.get_u8()? {
            0 => None,
            _ => Some(r.get_str()?),
        };
        Ok(RunRecord {
            key,
            status,
            attempts,
            wall_ms,
            digest,
            error,
        })
    }
}

/// Sweep-level error: invalid configuration or grid, or a broken store.
#[derive(Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The parameter grid expanded to zero runs.
    EmptyGrid,
    /// Two *different* grid points share a key.
    DuplicateKey(String),
    /// `--jobs 0`: a sweep needs at least one worker.
    ZeroWorkers,
    /// A retry budget of zero attempts can never run anything.
    ZeroAttempts,
    /// The per-run timeout is shorter than the first retry backoff, so
    /// the retry schedule could never be exercised meaningfully.
    TimeoutShorterThanBackoff {
        /// Configured per-run deadline.
        timeout: Duration,
        /// Configured base backoff.
        backoff: Duration,
    },
    /// The sweep store (manifest/journal) failed or does not match.
    Store(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyGrid => {
                write!(f, "the parameter grid is empty: nothing to sweep")
            }
            FleetError::DuplicateKey(key) => write!(
                f,
                "two different grid points share the key {key:?}; keys must be unique"
            ),
            FleetError::ZeroWorkers => write!(f, "--jobs must be at least 1"),
            FleetError::ZeroAttempts => write!(f, "the retry budget must allow at least 1 attempt"),
            FleetError::TimeoutShorterThanBackoff { timeout, backoff } => write!(
                f,
                "the per-run timeout ({:.1}s) is shorter than the first retry backoff \
                 ({:.1}s); a retried run would spend its whole deadline waiting — raise \
                 the timeout or lower the backoff",
                timeout.as_secs_f64(),
                backoff.as_secs_f64()
            ),
            FleetError::Store(msg) => write!(f, "sweep store: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Sweep execution configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker (supervisor) thread count.
    pub workers: usize,
    /// Per-run wall-clock deadline (`None` = unbounded).
    pub run_timeout: Option<Duration>,
    /// Attempt budget per run (1 = no retries).
    pub max_attempts: u32,
    /// Base of the exponential retry backoff (doubles per failure,
    /// capped at 64×).
    pub backoff_base: Duration,
    /// Record failed runs and exit cleanly instead of reporting an
    /// error exit.
    pub keep_going: bool,
    /// Progress-line cadence on stderr (`None` = silent).
    pub heartbeat: Option<Duration>,
    /// Stop dispatching new runs after this many completions *in this
    /// invocation* (testing/ops aid: simulates a partial sweep that a
    /// later `--resume` finishes).
    pub stop_after: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            run_timeout: None,
            max_attempts: 3,
            backoff_base: Duration::from_millis(500),
            keep_going: true,
            heartbeat: None,
            stop_after: None,
        }
    }
}

impl FleetConfig {
    /// Reject configurations that could never run a sweep sensibly.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.workers == 0 {
            return Err(FleetError::ZeroWorkers);
        }
        if self.max_attempts == 0 {
            return Err(FleetError::ZeroAttempts);
        }
        if let Some(timeout) = self.run_timeout {
            if self.max_attempts > 1 && timeout < self.backoff_base {
                return Err(FleetError::TimeoutShorterThanBackoff {
                    timeout,
                    backoff: self.backoff_base,
                });
            }
        }
        Ok(())
    }
}

/// Validate a grid: reject an empty grid and conflicting keys, and drop
/// exact duplicate grid points (same full fingerprint), returning the
/// deduplicated grid plus one warning line per dropped duplicate.
pub fn validate_grid(specs: Vec<RunSpec>) -> Result<(Vec<RunSpec>, Vec<String>), FleetError> {
    if specs.is_empty() {
        return Err(FleetError::EmptyGrid);
    }
    let mut seen: Vec<(u64, String)> = Vec::with_capacity(specs.len());
    let mut out = Vec::with_capacity(specs.len());
    let mut warnings = Vec::new();
    for spec in specs {
        let mut h = Fnv1a::new();
        spec.fingerprint_into(&mut h);
        let fp = h.finish();
        if let Some((prev_fp, _)) = seen.iter().find(|(_, key)| *key == spec.key) {
            if *prev_fp == fp {
                warnings.push(format!(
                    "duplicate grid point {:?} dropped (identical configuration)",
                    spec.key
                ));
                continue;
            }
            return Err(FleetError::DuplicateKey(spec.key));
        }
        seen.push((fp, spec.key.clone()));
        out.push(spec);
    }
    Ok((out, warnings))
}

/// What one sweep invocation did.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-grid-point records, aligned with the spec slice (`None` =
    /// never dispatched, e.g. the invocation was stopped early).
    pub records: Vec<Option<RunRecord>>,
    /// Records reused from a resumed journal instead of re-run.
    pub resumed: usize,
    /// Runs executed by *this* invocation.
    pub executed: usize,
    /// Wall-clock time of this invocation.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl FleetReport {
    /// Runs that ended degraded (`timeout` or `failed`).
    pub fn failed_runs(&self) -> usize {
        self.records
            .iter()
            .flatten()
            .filter(|r| !r.status.succeeded())
            .count()
    }

    /// Runs that recovered via retry.
    pub fn retried_runs(&self) -> usize {
        self.records
            .iter()
            .flatten()
            .filter(|r| r.status == RunStatus::Retried)
            .count()
    }

    /// Whether every grid point has a record.
    pub fn complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }
}

/// One run currently executing, for heartbeat visibility.
struct Inflight {
    key: String,
    started: Instant,
}

struct Shared<'a> {
    specs: &'a [RunSpec],
    queue: Mutex<VecDeque<usize>>,
    /// (index, record) pairs as they complete, any order.
    results: Mutex<Vec<(usize, RunRecord)>>,
    inflight: Vec<Mutex<Option<Inflight>>>,
    done: AtomicUsize,
    failed: AtomicUsize,
    retried: AtomicUsize,
    executed: AtomicUsize,
    stop: AtomicBool,
    finished: AtomicBool,
    store_error: Mutex<Option<String>>,
}

/// Run a grid under supervision, resuming from `store` when it already
/// holds completed records.
///
/// Determinism contract: each grid point is executed by exactly one
/// worker with a deterministic `exec`, and all aggregation happens in
/// grid order — so the sweep's results are independent of the worker
/// count and of the work-stealing schedule.
pub fn run_fleet(
    specs: &[RunSpec],
    cfg: &FleetConfig,
    exec: Exec,
    store: Option<&SweepStore>,
) -> Result<FleetReport, FleetError> {
    cfg.validate()?;
    if specs.is_empty() {
        return Err(FleetError::EmptyGrid);
    }
    let start = Instant::now();

    let mut records: Vec<Option<RunRecord>> = specs
        .iter()
        .map(|s| store.and_then(|st| st.completed().get(&s.key).cloned()))
        .collect();
    let resumed = records.iter().flatten().count();
    let pending: VecDeque<usize> = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    let total_pending = pending.len();
    let workers = cfg.workers.min(total_pending.max(1));

    let shared = Shared {
        specs,
        queue: Mutex::new(pending),
        results: Mutex::new(Vec::with_capacity(total_pending)),
        inflight: (0..workers).map(|_| Mutex::new(None)).collect(),
        done: AtomicUsize::new(0),
        failed: AtomicUsize::new(0),
        retried: AtomicUsize::new(0),
        executed: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        finished: AtomicBool::new(false),
        store_error: Mutex::new(None),
    };

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for slot in 0..workers {
            let shared = &shared;
            let exec = exec.clone();
            handles.push(scope.spawn(move || worker_loop(shared, slot, cfg, exec, store)));
        }
        if let Some(every) = cfg.heartbeat {
            let shared = &shared;
            let total = total_pending + resumed;
            scope.spawn(move || heartbeat_loop(shared, every, total, resumed, start));
        }
        for h in handles {
            h.join().expect("fleet worker panicked outside supervision");
        }
        shared.finished.store(true, Ordering::SeqCst);
    });

    let executed = shared.executed.load(Ordering::SeqCst);
    for (idx, rec) in shared.results.into_inner().unwrap() {
        records[idx] = Some(rec);
    }
    if let Some(msg) = shared.store_error.into_inner().unwrap() {
        return Err(FleetError::Store(msg));
    }
    Ok(FleetReport {
        records,
        resumed,
        executed,
        wall: start.elapsed(),
        workers,
    })
}

fn worker_loop(
    shared: &Shared<'_>,
    slot: usize,
    cfg: &FleetConfig,
    exec: Exec,
    store: Option<&SweepStore>,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Some(idx) = shared.queue.lock().unwrap().pop_front() else {
            return;
        };
        let spec = &shared.specs[idx];
        let rec = supervise(shared, slot, spec, cfg, &exec);

        match rec.status {
            RunStatus::Retried => {
                shared.retried.fetch_add(1, Ordering::SeqCst);
            }
            RunStatus::Timeout | RunStatus::Failed => {
                shared.failed.fetch_add(1, Ordering::SeqCst);
            }
            RunStatus::Ok => {}
        }
        shared.done.fetch_add(1, Ordering::SeqCst);

        if let Some(store) = store {
            if let Err(e) = store.append(&rec) {
                *shared.store_error.lock().unwrap() =
                    Some(format!("cannot journal run {:?}: {e}", rec.key));
                shared.stop.store(true, Ordering::SeqCst);
            }
        }
        shared.results.lock().unwrap().push((idx, rec));

        let executed_now = shared.executed.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(limit) = cfg.stop_after {
            if executed_now >= limit {
                shared.stop.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// Run one grid point to a final record: attempt, catch, time out,
/// back off, retry, give up.
fn supervise(
    shared: &Shared<'_>,
    slot: usize,
    spec: &RunSpec,
    cfg: &FleetConfig,
    exec: &Exec,
) -> RunRecord {
    let run_start = Instant::now();
    let mut attempts = 0u32;
    let mut had_failure = false;
    loop {
        attempts += 1;
        *shared.inflight[slot].lock().unwrap() = Some(Inflight {
            key: spec.key.clone(),
            started: Instant::now(),
        });
        let result = attempt(spec, exec, cfg.run_timeout);
        *shared.inflight[slot].lock().unwrap() = None;

        match result {
            Ok(digest) => {
                return RunRecord {
                    key: spec.key.clone(),
                    status: if had_failure {
                        RunStatus::Retried
                    } else {
                        RunStatus::Ok
                    },
                    attempts,
                    wall_ms: run_start.elapsed().as_millis() as u64,
                    digest: Some(digest),
                    error: None,
                }
            }
            Err(failure) => {
                had_failure = true;
                if attempts >= cfg.max_attempts {
                    return RunRecord {
                        key: spec.key.clone(),
                        status: match failure {
                            RunFailure::TimedOut(_) => RunStatus::Timeout,
                            RunFailure::Panicked(_) => RunStatus::Failed,
                        },
                        attempts,
                        wall_ms: run_start.elapsed().as_millis() as u64,
                        digest: None,
                        error: Some(failure.message()),
                    };
                }
                // Exponential backoff, capped at 64x the base.
                let exp = (attempts - 1).min(6);
                std::thread::sleep(cfg.backoff_base * 2u32.pow(exp));
            }
        }
    }
}

/// One supervised attempt.
fn attempt(
    spec: &RunSpec,
    exec: &Exec,
    timeout: Option<Duration>,
) -> Result<RunDigest, RunFailure> {
    match timeout {
        None => catch_unwind(AssertUnwindSafe(|| exec(spec)))
            .map_err(|payload| RunFailure::Panicked(panic_message(payload.as_ref()))),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let spec = spec.clone();
            let exec = exec.clone();
            let handle = std::thread::Builder::new()
                .name(format!("amjs-run-{}", spec.key))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| exec(&spec)))
                        .map_err(|payload| panic_message(payload.as_ref()));
                    let _ = tx.send(result);
                })
                .expect("cannot spawn attempt thread");
            match rx.recv_timeout(limit) {
                Ok(Ok(digest)) => {
                    let _ = handle.join();
                    Ok(digest)
                }
                Ok(Err(msg)) => {
                    let _ = handle.join();
                    Err(RunFailure::Panicked(msg))
                }
                // The attempt overran its deadline. The thread cannot be
                // killed; it is abandoned (detached) and its eventual
                // result, if any, is discarded with the channel.
                Err(_) => Err(RunFailure::TimedOut(limit)),
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn heartbeat_loop(
    shared: &Shared<'_>,
    every: Duration,
    total: usize,
    resumed: usize,
    start: Instant,
) {
    let mut last = Instant::now();
    loop {
        if shared.finished.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
        if last.elapsed() < every {
            continue;
        }
        last = Instant::now();
        let done = shared.done.load(Ordering::SeqCst);
        let failed = shared.failed.load(Ordering::SeqCst);
        let retried = shared.retried.load(Ordering::SeqCst);
        let inflight: Vec<String> = shared
            .inflight
            .iter()
            .filter_map(|m| {
                m.lock()
                    .unwrap()
                    .as_ref()
                    .map(|run| format!("{} {:.0}s", run.key, run.started.elapsed().as_secs_f64()))
            })
            .collect();
        let rate = done as f64 / start.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "amjs fleet: {}/{} done ({retried} retried, {failed} failed), \
             {} inflight [{}], {rate:.2} runs/s",
            resumed + done,
            total,
            inflight.len(),
            inflight.join(", "),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amjs_core::{MachineSpec, PolicyParams, PresetName, WorkloadSource};

    fn spec(key: &str, seed: u64) -> RunSpec {
        RunSpec::new(
            key,
            MachineSpec::Flat { nodes: 64 },
            WorkloadSource::Preset {
                name: PresetName::Small,
                seed,
                load_factor: 1.0,
            },
            PolicyParams::fcfs(),
        )
    }

    /// A fake executor that doesn't simulate: digests carry the seed so
    /// tests can check routing.
    fn fake_exec() -> Exec {
        Arc::new(|s: &RunSpec| {
            let mut d = crate::digest::tests::sample(&s.label);
            d.scheduler_passes = match &s.workload {
                WorkloadSource::Preset { seed, .. } => *seed,
                _ => 0,
            };
            d
        })
    }

    fn quick_cfg(workers: usize) -> FleetConfig {
        FleetConfig {
            workers,
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn config_validation_guards() {
        assert_eq!(
            FleetConfig {
                workers: 0,
                ..FleetConfig::default()
            }
            .validate(),
            Err(FleetError::ZeroWorkers)
        );
        assert_eq!(
            FleetConfig {
                max_attempts: 0,
                ..FleetConfig::default()
            }
            .validate(),
            Err(FleetError::ZeroAttempts)
        );
        // Timeout shorter than the first backoff is rejected...
        let bad = FleetConfig {
            run_timeout: Some(Duration::from_millis(100)),
            backoff_base: Duration::from_secs(1),
            ..FleetConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(FleetError::TimeoutShorterThanBackoff { .. })
        ));
        // ...but fine when retries are off (the backoff can never fire).
        let no_retry = FleetConfig {
            max_attempts: 1,
            ..bad
        };
        assert_eq!(no_retry.validate(), Ok(()));
    }

    #[test]
    fn grid_validation_rejects_empty_and_conflicting() {
        assert_eq!(validate_grid(vec![]), Err(FleetError::EmptyGrid));

        // Identical duplicates dedup with a warning.
        let (specs, warnings) = validate_grid(vec![spec("a", 1), spec("a", 1)]).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("duplicate grid point"));

        // Same key, different content: hard error.
        assert_eq!(
            validate_grid(vec![spec("a", 1), spec("a", 2)]),
            Err(FleetError::DuplicateKey("a".to_string()))
        );
    }

    #[test]
    fn fleet_runs_every_grid_point_once() {
        let specs: Vec<RunSpec> = (0..13).map(|i| spec(&format!("k{i}"), i)).collect();
        let report = run_fleet(&specs, &quick_cfg(4), fake_exec(), None).unwrap();
        assert!(report.complete());
        assert_eq!(report.executed, 13);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.failed_runs(), 0);
        for (i, rec) in report.records.iter().enumerate() {
            let rec = rec.as_ref().unwrap();
            assert_eq!(rec.key, format!("k{i}"));
            assert_eq!(rec.status, RunStatus::Ok);
            assert_eq!(rec.attempts, 1);
            assert_eq!(rec.digest.as_ref().unwrap().scheduler_passes, i as u64);
        }
    }

    #[test]
    fn panicking_run_is_retried_then_failed_and_the_rest_complete() {
        let specs: Vec<RunSpec> = (0..6).map(|i| spec(&format!("k{i}"), i)).collect();
        let exec: Exec = Arc::new(|s: &RunSpec| {
            if s.key == "k3" {
                panic!("injected failure for {}", s.key);
            }
            crate::digest::tests::sample(&s.label)
        });
        let report = run_fleet(&specs, &quick_cfg(3), exec, None).unwrap();
        assert!(report.complete());
        assert_eq!(report.failed_runs(), 1);
        let bad = report.records[3].as_ref().unwrap();
        assert_eq!(bad.status, RunStatus::Failed);
        assert_eq!(bad.attempts, 3, "the full retry budget was consumed");
        assert!(bad.digest.is_none());
        assert!(bad.error.as_ref().unwrap().contains("injected failure"));
        for i in [0, 1, 2, 4, 5] {
            assert_eq!(report.records[i].as_ref().unwrap().status, RunStatus::Ok);
        }
    }

    #[test]
    fn flaky_run_recovers_and_is_marked_retried() {
        let specs = vec![spec("flaky", 1), spec("steady", 2)];
        let tripped = Arc::new(AtomicBool::new(false));
        let exec: Exec = {
            let tripped = tripped.clone();
            Arc::new(move |s: &RunSpec| {
                if s.key == "flaky" && !tripped.swap(true, Ordering::SeqCst) {
                    panic!("first attempt fails");
                }
                crate::digest::tests::sample(&s.label)
            })
        };
        let report = run_fleet(&specs, &quick_cfg(2), exec, None).unwrap();
        let flaky = report.records[0].as_ref().unwrap();
        assert_eq!(flaky.status, RunStatus::Retried);
        assert_eq!(flaky.attempts, 2);
        assert!(flaky.digest.is_some());
        assert_eq!(report.retried_runs(), 1);
        assert_eq!(report.failed_runs(), 0);
    }

    #[test]
    fn hung_run_times_out_and_the_rest_complete() {
        let specs = vec![spec("hung", 1), spec("fine", 2)];
        let exec: Exec = Arc::new(|s: &RunSpec| {
            if s.key == "hung" {
                // Far past the deadline; the attempt thread is abandoned.
                std::thread::sleep(Duration::from_secs(5));
            }
            crate::digest::tests::sample(&s.label)
        });
        let cfg = FleetConfig {
            workers: 2,
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            run_timeout: Some(Duration::from_millis(80)),
            ..FleetConfig::default()
        };
        let started = Instant::now();
        let report = run_fleet(&specs, &cfg, exec, None).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "the sweep must not wait for the hung run"
        );
        let hung = report.records[0].as_ref().unwrap();
        assert_eq!(hung.status, RunStatus::Timeout);
        assert_eq!(hung.attempts, 2);
        assert!(hung.error.as_ref().unwrap().contains("timed out"));
        assert_eq!(report.records[1].as_ref().unwrap().status, RunStatus::Ok);
    }

    #[test]
    fn stop_after_leaves_the_tail_undispatched() {
        let specs: Vec<RunSpec> = (0..8).map(|i| spec(&format!("k{i}"), i)).collect();
        let cfg = FleetConfig {
            workers: 1,
            stop_after: Some(3),
            ..quick_cfg(1)
        };
        let report = run_fleet(&specs, &cfg, fake_exec(), None).unwrap();
        assert_eq!(report.executed, 3);
        assert!(!report.complete());
        assert_eq!(report.records.iter().flatten().count(), 3);
    }

    #[test]
    fn record_round_trips_through_the_codec() {
        for rec in [
            RunRecord {
                key: "k".into(),
                status: RunStatus::Retried,
                attempts: 2,
                wall_ms: 1234,
                digest: Some(crate::digest::tests::sample("BF=1/W=1")),
                error: Some("panicked: once".into()),
            },
            RunRecord {
                key: "dead".into(),
                status: RunStatus::Timeout,
                attempts: 3,
                wall_ms: 9000,
                digest: None,
                error: Some("timed out after 3.0s".into()),
            },
        ] {
            let mut w = SnapWriter::new();
            rec.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(
                RunRecord::decode(&mut SnapReader::new(&bytes)).unwrap(),
                rec
            );
        }
    }
}
