//! # amjs-fleet — the fault-tolerant parallel sweep orchestrator
//!
//! Every experiment is a *grid* of independent, deterministic
//! simulations ([`amjs_core::RunSpec`] grid points). This crate fans a
//! grid across all cores and makes the sweep robust by construction:
//!
//! * **supervised workers** — each run executes under `catch_unwind`,
//!   so a panicking simulation (an oracle trip, a workload that cannot
//!   load) becomes a structured [`RunFailure`] instead of poisoning the
//!   sweep;
//! * **deadlines** — a per-run wall-clock timeout is enforced by the
//!   supervising worker (the run executes on an attempt thread that is
//!   abandoned when it overruns), and a shared inflight table lets the
//!   heartbeat name overdue runs;
//! * **retry with backoff** — failed attempts are retried with
//!   exponential backoff up to a capped attempt budget, then recorded
//!   as degraded (`timeout`/`failed`) rather than aborting the sweep;
//! * **durable progress** — a sweep manifest (the full encoded grid +
//!   its fingerprint) and an append-only checksummed result journal
//!   make `amjs sweep --resume <dir>` skip completed runs exactly and
//!   re-aggregate byte-identically after a crash (see [`store`]);
//! * **deterministic aggregation** — per-run rows and per-config
//!   mean ± 95% CI aggregates are emitted in grid order, so the
//!   aggregated CSV is byte-identical across worker counts and
//!   work-stealing schedules (see [`aggregate`]).

#![warn(missing_docs)]

pub mod aggregate;
pub mod digest;
pub mod engine;
pub mod store;

pub use aggregate::{aggregate_csv, bench_json, render_table};
pub use digest::RunDigest;
pub use engine::{
    default_exec, run_fleet, validate_grid, Exec, FleetConfig, FleetError, FleetReport, RunFailure,
    RunRecord, RunStatus,
};
pub use store::SweepStore;
