//! Fairness via fair start times.
//!
//! Paper §IV-A: "we assign a 'fair start time' to each job at its
//! submission. Any job started after its 'fair start time' is considered
//! to have been treated unfairly. The 'fair start time' is calculated as
//! follows: assuming there is no later arrival jobs, we conduct a
//! simulation of scheduling under current scheduling policy and get when
//! the job will be started." (The approach of Sabin et al., ICPP 2004.)
//!
//! The drain simulation itself lives in `amjs-core` (it needs the
//! scheduler); this tracker stores each job's fair start and actual
//! start and counts violations. A small tolerance absorbs the
//! one-second rounding of the event engine — a job is *unfair* only if
//! it started more than [`FairnessTracker::tolerance`] after its fair
//! start time.

use std::collections::HashMap;

use amjs_sim::{SimDuration, SimTime};
use amjs_workload::JobId;

/// Record of one job's fairness outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FairnessRecord {
    /// The job.
    pub job: JobId,
    /// Start the job would have had with no later arrivals.
    pub fair_start: SimTime,
    /// Start the job actually got.
    pub actual_start: SimTime,
}

impl FairnessRecord {
    /// How far past its fair start the job began (clamped at zero).
    pub fn delay(&self) -> SimDuration {
        (self.actual_start - self.fair_start).max_zero()
    }
}

/// Collects fair/actual start pairs and summarizes unfairness.
#[derive(Clone, Debug)]
pub struct FairnessTracker {
    tolerance: SimDuration,
    fair_starts: HashMap<JobId, SimTime>,
    records: Vec<FairnessRecord>,
}

impl Default for FairnessTracker {
    fn default() -> Self {
        Self::new(SimDuration::from_secs(60))
    }
}

impl FairnessTracker {
    /// Tracker with the given unfairness tolerance (default 60 s).
    pub fn new(tolerance: SimDuration) -> Self {
        assert!(!tolerance.is_negative());
        FairnessTracker {
            tolerance,
            fair_starts: HashMap::new(),
            records: Vec::new(),
        }
    }

    /// The tolerance in use.
    pub fn tolerance(&self) -> SimDuration {
        self.tolerance
    }

    /// Record the fair start computed for `job` at its submission.
    pub fn record_fair_start(&mut self, job: JobId, fair_start: SimTime) {
        let prev = self.fair_starts.insert(job, fair_start);
        debug_assert!(prev.is_none(), "duplicate fair start for {job}");
    }

    /// Record the actual start of `job`, pairing it with its stored fair
    /// start.
    ///
    /// # Panics
    /// Panics if no fair start was recorded for the job — the runner
    /// must compute fair starts at submission, before any start can
    /// happen.
    pub fn record_actual_start(&mut self, job: JobId, actual_start: SimTime) {
        let fair_start = *self
            .fair_starts
            .get(&job)
            .unwrap_or_else(|| panic!("no fair start recorded for {job}"));
        self.records.push(FairnessRecord {
            job,
            fair_start,
            actual_start,
        });
    }

    /// Jobs started more than the tolerance after their fair start.
    pub fn unfair_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.actual_start > r.fair_start + self.tolerance)
            .count()
    }

    /// Number of completed (fair, actual) pairs.
    pub fn total_count(&self) -> usize {
        self.records.len()
    }

    /// Mean unfair delay in minutes over *unfair* jobs (0 if none) —
    /// a magnitude companion to the paper's count.
    pub fn mean_unfair_delay_mins(&self) -> f64 {
        let unfair: Vec<&FairnessRecord> = self
            .records
            .iter()
            .filter(|r| r.actual_start > r.fair_start + self.tolerance)
            .collect();
        if unfair.is_empty() {
            return 0.0;
        }
        unfair.iter().map(|r| r.delay().as_mins_f64()).sum::<f64>() / unfair.len() as f64
    }

    /// All completed records, in start order.
    pub fn records(&self) -> &[FairnessRecord] {
        &self.records
    }
}

impl amjs_sim::Snapshot for FairnessRecord {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        self.job.encode(w);
        self.fair_start.encode(w);
        self.actual_start.encode(w);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        Ok(FairnessRecord {
            job: Snapshot::decode(r)?,
            fair_start: Snapshot::decode(r)?,
            actual_start: Snapshot::decode(r)?,
        })
    }
}

impl amjs_sim::Snapshot for FairnessTracker {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        self.tolerance.encode(w);
        // HashMap iteration order is nondeterministic; a canonical
        // encoding requires sorted keys.
        let mut starts: Vec<(JobId, SimTime)> =
            self.fair_starts.iter().map(|(&j, &t)| (j, t)).collect();
        starts.sort_by_key(|&(j, _)| j);
        starts.encode(w);
        self.records.encode(w);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        let tolerance = Snapshot::decode(r)?;
        let starts: Vec<(JobId, SimTime)> = Snapshot::decode(r)?;
        Ok(FairnessTracker {
            tolerance,
            fair_starts: starts.into_iter().collect(),
            records: Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn counts_only_beyond_tolerance() {
        let mut f = FairnessTracker::new(SimDuration::from_secs(60));
        f.record_fair_start(JobId(0), t(100));
        f.record_fair_start(JobId(1), t(100));
        f.record_fair_start(JobId(2), t(100));
        f.record_actual_start(JobId(0), t(100)); // exactly fair
        f.record_actual_start(JobId(1), t(160)); // within tolerance
        f.record_actual_start(JobId(2), t(161)); // unfair
        assert_eq!(f.total_count(), 3);
        assert_eq!(f.unfair_count(), 1);
    }

    #[test]
    fn early_start_is_fair() {
        let mut f = FairnessTracker::default();
        f.record_fair_start(JobId(0), t(500));
        f.record_actual_start(JobId(0), t(100)); // started early (e.g. backfilled)
        assert_eq!(f.unfair_count(), 0);
        assert_eq!(f.records()[0].delay(), SimDuration::ZERO);
    }

    #[test]
    fn mean_unfair_delay() {
        let mut f = FairnessTracker::new(SimDuration::ZERO);
        f.record_fair_start(JobId(0), t(0));
        f.record_fair_start(JobId(1), t(0));
        f.record_actual_start(JobId(0), t(120)); // 2 min late
        f.record_actual_start(JobId(1), t(240)); // 4 min late
        assert_eq!(f.unfair_count(), 2);
        assert!((f.mean_unfair_delay_mins() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_records_is_zero() {
        let f = FairnessTracker::default();
        assert_eq!(f.unfair_count(), 0);
        assert_eq!(f.mean_unfair_delay_mins(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no fair start")]
    fn actual_without_fair_panics() {
        let mut f = FairnessTracker::default();
        f.record_actual_start(JobId(9), t(0));
    }
}
