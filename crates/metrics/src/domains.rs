//! Failure-domain accounting: which level of the machine's physical
//! hierarchy each injected fault hit, and how much capacity each level
//! took out of service.
//!
//! Production Blue Gene/P outages are not i.i.d. single-midplane
//! events: a failed bulk power module takes a whole rack (2 midplanes),
//! a facility-side event takes a power domain (several racks), and in
//! the worst case the entire machine goes dark. The fault injector in
//! `amjs-core::failures` escalates faults along this hierarchy; this
//! module is the reporting side — per-level fault counts, quanta
//! downed, and injected-outage node-hours, surfaced next to the
//! capacity-collapse series so an experiment can say *which* outage
//! scale the scheduler was reacting to.

use crate::series::TimeSeries;
use amjs_sim::SimDuration;

/// A level of the machine's failure-domain hierarchy, ordered from the
/// base failure quantum to the whole machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultDomain {
    /// One midplane (the base failure quantum on Blue Gene/P; one node
    /// on a flat machine).
    Midplane,
    /// One rack: two midplanes sharing bulk power and cooling.
    Rack,
    /// One power domain: a row of racks behind one facility feed.
    PowerDomain,
    /// The full machine.
    Machine,
}

impl FaultDomain {
    /// All levels, smallest to largest.
    pub const ALL: [FaultDomain; 4] = [
        FaultDomain::Midplane,
        FaultDomain::Rack,
        FaultDomain::PowerDomain,
        FaultDomain::Machine,
    ];

    /// The enclosing domain one level up, or `None` at machine scale.
    pub fn escalated(self) -> Option<FaultDomain> {
        match self {
            FaultDomain::Midplane => Some(FaultDomain::Rack),
            FaultDomain::Rack => Some(FaultDomain::PowerDomain),
            FaultDomain::PowerDomain => Some(FaultDomain::Machine),
            FaultDomain::Machine => None,
        }
    }

    /// Short human label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultDomain::Midplane => "midplane",
            FaultDomain::Rack => "rack",
            FaultDomain::PowerDomain => "power",
            FaultDomain::Machine => "machine",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultDomain::Midplane => 0,
            FaultDomain::Rack => 1,
            FaultDomain::PowerDomain => 2,
            FaultDomain::Machine => 3,
        }
    }
}

/// Per-level outage statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DomainOutage {
    /// Faults injected at this level (including fully absorbed ones).
    pub faults: u64,
    /// Failure quanta newly taken out of service by those faults
    /// (quanta already down when the fault landed are not re-counted).
    pub quanta_downed: u64,
    /// Node-hours of outage injected: newly-downed nodes × scheduled
    /// repair duration. An *injected* quantity — overlapping faults on
    /// the same capacity are counted per fault, so this can exceed the
    /// integrated downtime of the capacity-collapse series.
    pub node_hours: f64,
}

/// Accumulator of per-domain downtime, filled by the simulation runner
/// as faults land.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DomainDowntime {
    levels: [DomainOutage; 4],
}

impl DomainDowntime {
    /// A fresh, all-zero accumulator.
    pub fn new() -> Self {
        DomainDowntime::default()
    }

    /// Count one injected fault at `level`.
    pub fn record_fault(&mut self, level: FaultDomain) {
        self.levels[level.index()].faults += 1;
    }

    /// Account `nodes` newly taken out of service by a `level` fault
    /// for `repair` long.
    pub fn record_outage(&mut self, level: FaultDomain, nodes: u32, repair: SimDuration) {
        let s = &mut self.levels[level.index()];
        s.quanta_downed += 1;
        s.node_hours += nodes as f64 * repair.as_secs() as f64 / 3600.0;
    }

    /// Statistics for one level.
    pub fn level(&self, level: FaultDomain) -> &DomainOutage {
        &self.levels[level.index()]
    }

    /// Total faults injected across all levels.
    pub fn total_faults(&self) -> u64 {
        self.levels.iter().map(|s| s.faults).sum()
    }

    /// Total injected outage node-hours across all levels.
    pub fn total_node_hours(&self) -> f64 {
        self.levels.iter().map(|s| s.node_hours).sum()
    }

    /// True when no fault was recorded at any level.
    pub fn is_empty(&self) -> bool {
        self.total_faults() == 0
    }

    /// Render the per-level table (levels with zero faults omitted);
    /// empty string when nothing was recorded.
    pub fn render_table(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::from("domain      faults   quanta   node-hours\n");
        for level in FaultDomain::ALL {
            let s = self.level(level);
            if s.faults == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<10} {:>7} {:>8} {:>12.0}\n",
                level.label(),
                s.faults,
                s.quanta_downed,
                s.node_hours
            ));
        }
        out
    }
}

impl amjs_sim::Snapshot for DomainOutage {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u64(self.faults);
        w.put_u64(self.quanta_downed);
        w.put_f64(self.node_hours);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        Ok(DomainOutage {
            faults: r.get_u64()?,
            quanta_downed: r.get_u64()?,
            node_hours: r.get_f64()?,
        })
    }
}

impl amjs_sim::Snapshot for DomainDowntime {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        for level in &self.levels {
            level.encode(w);
        }
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        let mut levels = [DomainOutage::default(); 4];
        for level in &mut levels {
            *level = Snapshot::decode(r)?;
        }
        Ok(DomainDowntime { levels })
    }
}

/// Build the capacity-collapse series: out-of-service node count over
/// time, sampled on the shared check-point grid. The complement of the
/// `availability` fraction in absolute nodes — the view in which a
/// cascading rack or power-domain outage is a visible cliff.
pub fn down_nodes_series() -> TimeSeries {
    TimeSeries::new("down_nodes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amjs_sim::SimTime;

    #[test]
    fn escalation_walks_the_hierarchy() {
        assert_eq!(FaultDomain::Midplane.escalated(), Some(FaultDomain::Rack));
        assert_eq!(
            FaultDomain::Rack.escalated(),
            Some(FaultDomain::PowerDomain)
        );
        assert_eq!(
            FaultDomain::PowerDomain.escalated(),
            Some(FaultDomain::Machine)
        );
        assert_eq!(FaultDomain::Machine.escalated(), None);
    }

    #[test]
    fn levels_are_ordered_small_to_large() {
        for pair in FaultDomain::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn downtime_accumulates_per_level() {
        let mut d = DomainDowntime::new();
        assert!(d.is_empty());
        assert_eq!(d.render_table(), "");
        d.record_fault(FaultDomain::Rack);
        d.record_outage(FaultDomain::Rack, 512, SimDuration::from_hours(2));
        d.record_outage(FaultDomain::Rack, 512, SimDuration::from_hours(2));
        d.record_fault(FaultDomain::Midplane);
        assert_eq!(d.level(FaultDomain::Rack).faults, 1);
        assert_eq!(d.level(FaultDomain::Rack).quanta_downed, 2);
        assert!((d.level(FaultDomain::Rack).node_hours - 2048.0).abs() < 1e-9);
        assert_eq!(d.level(FaultDomain::Midplane).quanta_downed, 0);
        assert_eq!(d.total_faults(), 2);
        assert!((d.total_node_hours() - 2048.0).abs() < 1e-9);
        let table = d.render_table();
        assert!(table.contains("rack"));
        assert!(table.contains("midplane"));
        assert!(!table.contains("power"));
    }

    #[test]
    fn down_series_has_the_conventional_name() {
        let mut s = down_nodes_series();
        s.push(SimTime::ZERO, 512.0);
        assert_eq!(s.name(), "down_nodes");
    }
}
