//! Time-series storage for monitored metrics.
//!
//! The adaptive tuner and the figure experiments both consume sampled
//! series (queue depth every 30 minutes, utilization averages, ...).
//! A [`TimeSeries`] is an append-only `(SimTime, f64)` sequence with the
//! handful of queries those consumers need, plus CSV export for the
//! experiment harness.

use amjs_sim::SimTime;

/// An append-only sampled metric: strictly non-decreasing timestamps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New empty series with a display name (used as the CSV column
    /// header).
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `t` precedes the last sample (series are sampled in
    /// simulation order by construction; violation is a logic error).
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in order");
        }
        self.points.push((t, value));
    }

    /// All samples, in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sample value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value of the most recent sample at or before `t` (step
    /// interpolation), if any.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Maximum sample value (NaN-free by construction of the feeders).
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Arithmetic mean of sample values.
    pub fn mean_value(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Samples restricted to `t <= until` (used to plot "first 200 hours"
    /// views as in the paper's figures).
    pub fn truncated(&self, until: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            points: self
                .points
                .iter()
                .copied()
                .take_while(|&(t, _)| t <= until)
                .collect(),
        }
    }
}

impl amjs_sim::Snapshot for TimeSeries {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_str(&self.name);
        self.points.encode(w);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        Ok(TimeSeries {
            name: r.get_str()?,
            points: Snapshot::decode(r)?,
        })
    }
}

/// Render several series sharing a sampling grid as CSV. The first column
/// is the sample time in hours; series are matched up by index, so they
/// must have identical sampling instants (the runner samples all metrics
/// on the same 30-minute grid). Panics on mismatched grids.
pub fn to_csv(series: &[&TimeSeries]) -> String {
    let mut out = String::from("hours");
    for s in series {
        out.push(',');
        out.push_str(s.name());
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    let n = series[0].len();
    for s in series {
        assert_eq!(s.len(), n, "series {:?} is on a different grid", s.name());
    }
    for i in 0..n {
        let (t, _) = series[0].points()[i];
        out.push_str(&format!("{:.3}", t.as_hours_f64()));
        for s in series {
            let (st, v) = s.points()[i];
            assert_eq!(st, t, "series {:?} is on a different grid", s.name());
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("qd");
        s.push(t(0), 1.0);
        s.push(t(60), 2.0);
        s.push(t(120), 0.5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), Some(0.5));
        assert_eq!(s.max_value(), Some(2.0));
        assert!((s.mean_value().unwrap() - (3.5 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn value_at_is_step_interpolated() {
        let mut s = TimeSeries::new("x");
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        assert_eq!(s.value_at(t(5)), None);
        assert_eq!(s.value_at(t(10)), Some(1.0));
        assert_eq!(s.value_at(t(15)), Some(1.0));
        assert_eq!(s.value_at(t(20)), Some(2.0));
        assert_eq!(s.value_at(t(99)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(t(10), 1.0);
        s.push(t(5), 1.0);
    }

    #[test]
    fn equal_time_pushes_are_allowed() {
        let mut s = TimeSeries::new("x");
        s.push(t(10), 1.0);
        s.push(t(10), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.push(t(i * 100), i as f64);
        }
        let cut = s.truncated(t(450));
        assert_eq!(cut.len(), 5);
        assert_eq!(cut.name(), "x");
    }

    #[test]
    fn empty_series_queries() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.last_value(), None);
        assert_eq!(s.max_value(), None);
        assert_eq!(s.mean_value(), None);
        assert_eq!(s.value_at(t(0)), None);
    }

    #[test]
    fn csv_renders_shared_grid() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        a.push(t(0), 1.0);
        a.push(t(3600), 2.0);
        b.push(t(0), 3.0);
        b.push(t(3600), 4.0);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "hours,a,b");
        assert_eq!(lines[1], "0.000,1.0000,3.0000");
        assert_eq!(lines[2], "1.000,2.0000,4.0000");
    }

    #[test]
    #[should_panic(expected = "different grid")]
    fn csv_rejects_mismatched_grids() {
        let mut a = TimeSeries::new("a");
        let b = TimeSeries::new("b");
        a.push(t(0), 1.0);
        let _ = to_csv(&[&a, &b]);
    }
}
