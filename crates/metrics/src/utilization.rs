//! System utilization: instant and trailing-window averages.
//!
//! Paper §IV-A: "This metric represents the ratio of utilized (or
//! delivered) node-hours to total available node-hours during the
//! checked period of time. Sometimes when we refer to the instant system
//! utilization rate we count the ratio of the number of busy nodes to
//! the total number of nodes."
//!
//! The tracker is fed a step function of busy nodes (every job start and
//! end changes it) and answers:
//!
//! * [`UtilizationTracker::instant`] — busy/total right now;
//! * [`UtilizationTracker::trailing_avg`] — average utilization over the
//!   past `H` (the paper's 1H / 10H / 24H lines in Figs. 5 and 6b), via
//!   an exact integral of the step function;
//! * [`UtilizationTracker::overall_avg`] — average from a given time to
//!   now (Table-II-style whole-run numbers).
//!
//! The 10H-below-24H crossover of these trailing averages is the
//! triggering event of the paper's window-size tuner, so this tracker is
//! also a *scheduler input*, not just a reporting device.

use amjs_sim::{SimDuration, SimTime};

/// Exact integrator of the busy-nodes step function.
#[derive(Clone, Debug)]
pub struct UtilizationTracker {
    total_nodes: u32,
    /// Breakpoints: (time, busy level from this time on, integral of
    /// busy·dt from epoch up to this time). Non-decreasing times.
    steps: Vec<(SimTime, u32, f64)>,
}

impl UtilizationTracker {
    /// New tracker for a machine of `total_nodes`, idle at `start`.
    pub fn new(total_nodes: u32, start: SimTime) -> Self {
        assert!(total_nodes > 0);
        UtilizationTracker {
            total_nodes,
            steps: vec![(start, 0, 0.0)],
        }
    }

    /// Record that from `t` on, `busy` nodes are in use.
    ///
    /// # Panics
    /// Panics if `t` precedes the previous step or `busy` exceeds the
    /// machine.
    pub fn set_busy(&mut self, t: SimTime, busy: u32) {
        assert!(
            busy <= self.total_nodes,
            "busy {busy} > total {}",
            self.total_nodes
        );
        let &(last_t, last_busy, last_int) = self.steps.last().unwrap();
        assert!(t >= last_t, "utilization steps must be time-ordered");
        if busy == last_busy {
            return; // no level change; skip redundant breakpoints
        }
        let integral = last_int + last_busy as f64 * (t - last_t).as_secs() as f64;
        self.steps.push((t, busy, integral));
    }

    /// Machine size.
    pub fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Busy nodes at time `t` (clamped to the last known level after the
    /// final step; the level before the first step is 0).
    pub fn busy_at(&self, t: SimTime) -> u32 {
        match self.steps.binary_search_by_key(&t, |&(st, ..)| st) {
            Ok(mut i) => {
                // Multiple steps can share a timestamp; the last one wins.
                while i + 1 < self.steps.len() && self.steps[i + 1].0 == t {
                    i += 1;
                }
                self.steps[i].1
            }
            Err(0) => 0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Instant utilization at `t`: busy/total.
    pub fn instant(&self, t: SimTime) -> f64 {
        self.busy_at(t) as f64 / self.total_nodes as f64
    }

    /// Integral of busy·dt over `[epoch, t]`.
    fn integral_to(&self, t: SimTime) -> f64 {
        let i = match self.steps.binary_search_by_key(&t, |&(st, ..)| st) {
            Ok(mut i) => {
                while i + 1 < self.steps.len() && self.steps[i + 1].0 == t {
                    i += 1;
                }
                i
            }
            Err(0) => return 0.0,
            Err(i) => i - 1,
        };
        let (st, busy, int) = self.steps[i];
        int + busy as f64 * (t - st).as_secs() as f64
    }

    /// Average utilization over `[from, to]`; `from` is clamped to the
    /// tracker's start. Returns the instant value for a degenerate
    /// window.
    pub fn avg_over(&self, from: SimTime, to: SimTime) -> f64 {
        let start = self.steps[0].0;
        let from = from.max(start);
        assert!(to >= from, "avg_over window is reversed");
        let span = (to - from).as_secs();
        if span == 0 {
            return self.instant(to);
        }
        let node_secs = self.integral_to(to) - self.integral_to(from);
        node_secs / (self.total_nodes as f64 * span as f64)
    }

    /// Average utilization over the trailing `window` ending at `now`
    /// (the paper's 1H/10H/24H lines). Windows reaching before the
    /// tracker start are clamped, so early samples average over the
    /// elapsed time only.
    pub fn trailing_avg(&self, now: SimTime, window: SimDuration) -> f64 {
        assert!(!window.is_negative());
        self.avg_over(now - window, now)
    }

    /// Whole-run average from the tracker start to `now`.
    pub fn overall_avg(&self, now: SimTime) -> f64 {
        self.avg_over(self.steps[0].0, now)
    }

    /// Busy node-seconds accumulated over `[start, until]` (the exact
    /// integral of the busy step function) — the "delivered node-hours"
    /// numerator of the paper's utilization definition, and the energy
    /// model's input.
    pub fn busy_node_secs(&self, until: SimTime) -> f64 {
        self.integral_to(until.max(self.steps[0].0))
    }

    /// Seconds elapsed from the tracker start to `until` (clamped at 0).
    pub fn elapsed_secs(&self, until: SimTime) -> f64 {
        (until - self.steps[0].0).max_zero().as_secs() as f64
    }
}

impl amjs_sim::Snapshot for UtilizationTracker {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u32(self.total_nodes);
        self.steps.encode(w);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        let total_nodes = r.get_u32()?;
        let steps: Vec<(SimTime, u32, f64)> = Snapshot::decode(r)?;
        if steps.is_empty() {
            return Err(amjs_sim::SnapError::Malformed(
                "utilization tracker with no initial step".into(),
            ));
        }
        Ok(UtilizationTracker { total_nodes, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: i64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn instant_tracks_steps() {
        let mut u = UtilizationTracker::new(100, t(0));
        u.set_busy(t(10), 50);
        u.set_busy(t(20), 80);
        assert_eq!(u.instant(t(0)), 0.0);
        assert_eq!(u.instant(t(10)), 0.5);
        assert_eq!(u.instant(t(15)), 0.5);
        assert_eq!(u.instant(t(20)), 0.8);
        assert_eq!(u.instant(t(1000)), 0.8);
    }

    #[test]
    fn averages_are_exact_integrals() {
        let mut u = UtilizationTracker::new(100, t(0));
        u.set_busy(t(0), 100); // busy 100 over [0, 50)
        u.set_busy(t(50), 0); //  idle over [50, 100)
        assert!((u.avg_over(t(0), t(100)) - 0.5).abs() < 1e-12);
        assert!((u.avg_over(t(0), t(50)) - 1.0).abs() < 1e-12);
        assert!((u.avg_over(t(50), t(100)) - 0.0).abs() < 1e-12);
        assert!((u.avg_over(t(25), t(75)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trailing_window_clamps_to_start() {
        let mut u = UtilizationTracker::new(10, t(0));
        u.set_busy(t(0), 10);
        // At t=50 a 100-second window only has 50 seconds of history,
        // fully busy.
        assert!((u.trailing_avg(t(50), d(100)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_timestamp_steps_last_wins() {
        let mut u = UtilizationTracker::new(10, t(0));
        u.set_busy(t(5), 4);
        u.set_busy(t(5), 7);
        assert_eq!(u.busy_at(t(5)), 7);
        assert_eq!(u.busy_at(t(6)), 7);
        // The zero-length 4-level interval contributes nothing.
        assert!((u.avg_over(t(0), t(10)) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn redundant_levels_are_coalesced() {
        let mut u = UtilizationTracker::new(10, t(0));
        u.set_busy(t(5), 4);
        u.set_busy(t(9), 4);
        assert_eq!(u.steps.len(), 2); // initial + one change
    }

    #[test]
    fn overall_average() {
        let mut u = UtilizationTracker::new(4, t(0));
        u.set_busy(t(0), 2);
        u.set_busy(t(100), 4);
        // [0,100): 0.5; [100,200): 1.0 → overall over [0,200] = 0.75
        assert!((u.overall_avg(t(200)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_window_returns_instant() {
        let mut u = UtilizationTracker::new(10, t(0));
        u.set_busy(t(0), 5);
        assert_eq!(u.avg_over(t(0), t(0)), 0.5);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_step_panics() {
        let mut u = UtilizationTracker::new(10, t(0));
        u.set_busy(t(10), 2);
        u.set_busy(t(5), 3);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn busy_above_total_panics() {
        let mut u = UtilizationTracker::new(10, t(0));
        u.set_busy(t(1), 11);
    }

    #[test]
    fn nonzero_start_time() {
        let mut u = UtilizationTracker::new(10, t(1000));
        u.set_busy(t(1000), 10);
        assert!((u.trailing_avg(t(1100), d(1_000_000)) - 1.0).abs() < 1e-12);
    }
}
