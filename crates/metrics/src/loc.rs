//! Loss of Capacity — paper eq. (4).
//!
//! "A system incurs LoC when (i) it has jobs waiting in the queue to
//! execute and (ii) it has sufficient idle nodes, but it still cannot
//! execute those waiting jobs":
//!
//! ```text
//!         sum_{i=1}^{m-1}  n_i * (t_{i+1} - t_i) * delta_i
//! LoC  =  ------------------------------------------------
//!                      N * (t_m - t_1)
//! ```
//!
//! where scheduling events `i` happen at each job arrival or termination,
//! `n_i` is the idle node count left after event `i`, and `delta_i` is 1
//! iff some job is still waiting whose size is no larger than `n_i`.
//! The accumulator is fed once per scheduling event *after* the scheduler
//! has done all it can at that instant, so a nonzero term really is
//! capacity the policy failed to deliver (fragmentation, or backfill
//! admission protecting a reservation).

use amjs_sim::SimTime;

/// Streaming accumulator for eq. (4).
#[derive(Clone, Debug)]
pub struct LossOfCapacity {
    total_nodes: u32,
    first_event: Option<SimTime>,
    last_event: Option<SimTime>,
    /// State left by the previous event: (idle nodes, delta).
    prev: Option<(u32, bool)>,
    lost_node_secs: f64,
}

impl LossOfCapacity {
    /// New accumulator for a machine of `total_nodes`.
    pub fn new(total_nodes: u32) -> Self {
        assert!(total_nodes > 0);
        LossOfCapacity {
            total_nodes,
            first_event: None,
            last_event: None,
            prev: None,
            lost_node_secs: 0.0,
        }
    }

    /// Record scheduling event at `t`, *after* the scheduler has run:
    /// `idle_nodes` are left idle and `has_fitting_waiter` says whether
    /// some waiting job requests no more than `idle_nodes` nodes.
    ///
    /// # Panics
    /// Panics if `t` precedes the previous event.
    pub fn record_event(&mut self, t: SimTime, idle_nodes: u32, has_fitting_waiter: bool) {
        assert!(idle_nodes <= self.total_nodes);
        if self.first_event.is_none() {
            self.first_event = Some(t);
        }
        if let (Some(last), Some((idle, delta))) = (self.last_event, self.prev) {
            assert!(t >= last, "LoC events must be time-ordered");
            if delta {
                self.lost_node_secs += idle as f64 * (t - last).as_secs() as f64;
            }
        }
        self.last_event = Some(t);
        self.prev = Some((idle_nodes, has_fitting_waiter && idle_nodes > 0));
    }

    /// The LoC ratio accumulated so far (0 if fewer than two events).
    pub fn ratio(&self) -> f64 {
        match (self.first_event, self.last_event) {
            (Some(first), Some(last)) if last > first => {
                self.lost_node_secs / (self.total_nodes as f64 * (last - first).as_secs() as f64)
            }
            _ => 0.0,
        }
    }

    /// LoC as a percentage, the unit of Table II's last column.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }

    /// Raw lost node-seconds (numerator of eq. 4).
    pub fn lost_node_secs(&self) -> f64 {
        self.lost_node_secs
    }

    /// The `(first, last)` scheduling-event span covered so far — the
    /// denominator interval of eq. (4). `None` before any event. Lets a
    /// caller re-normalize the ratio against a degraded machine
    /// (available rather than installed node-seconds).
    pub fn event_span(&self) -> Option<(SimTime, SimTime)> {
        self.first_event.zip(self.last_event)
    }
}

impl amjs_sim::Snapshot for LossOfCapacity {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_u32(self.total_nodes);
        self.first_event.encode(w);
        self.last_event.encode(w);
        self.prev.encode(w);
        w.put_f64(self.lost_node_secs);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        Ok(LossOfCapacity {
            total_nodes: r.get_u32()?,
            first_event: Snapshot::decode(r)?,
            last_event: Snapshot::decode(r)?,
            prev: Snapshot::decode(r)?,
            lost_node_secs: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn no_waiters_no_loss() {
        let mut loc = LossOfCapacity::new(100);
        loc.record_event(t(0), 50, false);
        loc.record_event(t(100), 80, false);
        loc.record_event(t(200), 0, false);
        assert_eq!(loc.ratio(), 0.0);
    }

    #[test]
    fn hand_computed_loss() {
        let mut loc = LossOfCapacity::new(100);
        // Event 1 at t=0: 40 idle, a fitting job waits → the interval
        // [0,100) contributes 40*100 lost node-seconds.
        loc.record_event(t(0), 40, true);
        // Event 2 at t=100: 10 idle, no fitting waiter.
        loc.record_event(t(100), 10, false);
        // Event 3 at t=300: closes the second interval (no loss).
        loc.record_event(t(300), 0, false);
        // LoC = 4000 / (100 * 300)
        assert!((loc.ratio() - 4000.0 / 30_000.0).abs() < 1e-12);
        assert!((loc.percent() - 13.333_333).abs() < 1e-3);
        assert_eq!(loc.lost_node_secs(), 4000.0);
    }

    #[test]
    fn zero_idle_never_counts() {
        let mut loc = LossOfCapacity::new(100);
        // "Fitting waiter" with zero idle nodes is vacuous; delta must be
        // 0 regardless of the flag passed (defensive against caller
        // computing `smallest_job <= 0`).
        loc.record_event(t(0), 0, true);
        loc.record_event(t(100), 0, true);
        assert_eq!(loc.ratio(), 0.0);
    }

    #[test]
    fn fewer_than_two_events_is_zero() {
        let mut loc = LossOfCapacity::new(10);
        assert_eq!(loc.ratio(), 0.0);
        loc.record_event(t(5), 5, true);
        assert_eq!(loc.ratio(), 0.0);
    }

    #[test]
    fn simultaneous_events_are_fine() {
        let mut loc = LossOfCapacity::new(10);
        loc.record_event(t(0), 5, true);
        loc.record_event(t(0), 3, true); // zero-length interval: no loss
        loc.record_event(t(10), 0, false);
        // Only the second state persisted: 3 idle over [0,10).
        assert!((loc.lost_node_secs() - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_event_panics() {
        let mut loc = LossOfCapacity::new(10);
        loc.record_event(t(10), 1, false);
        loc.record_event(t(5), 1, false);
    }

    #[test]
    fn full_loss_is_one() {
        let mut loc = LossOfCapacity::new(10);
        loc.record_event(t(0), 10, true);
        loc.record_event(t(50), 10, true);
        loc.record_event(t(100), 10, true);
        assert!((loc.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(loc.percent(), 100.0);
    }
}
