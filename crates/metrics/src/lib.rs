//! # amjs-metrics — the paper's evaluation metrics
//!
//! Section IV-A of the paper defines five metrics; each has a module
//! here:
//!
//! * **waiting time** ([`wait`]) — submit→start delay per job; the paper
//!   reports the average in minutes (Table II, Fig. 3a);
//! * **queue depth** ([`series`] + the runner) — the sum of waiting time
//!   accrued so far by all *currently queued* jobs, sampled every 30
//!   minutes (Figs. 4, 6a). A monitoring metric, so it lives as a
//!   [`series::TimeSeries`] fed by the simulation runner;
//! * **fairness** ([`fairness`]) — each job gets a *fair start time* (its
//!   start if no later job had ever arrived, under the current policy);
//!   jobs starting later than that are counted as unfairly treated
//!   (Table II, Fig. 3b);
//! * **system utilization** ([`utilization`]) — delivered/available
//!   node-time, instant and trailing 1 H/10 H/24 H averages (Figs. 5,
//!   6b);
//! * **loss of capacity** ([`loc`]) — eq. (4): idle node-time accumulated
//!   while some waiting job is small enough to fit in the idle capacity,
//!   normalized by total node-time (Table II, Fig. 3c).
//!
//! [`report::MetricsSummary`] bundles the end-of-run numbers into one
//! comparable row (the shape of Table II).

#![warn(missing_docs)]

pub mod domains;
pub mod energy;
pub mod fairness;
pub mod loc;
pub mod report;
pub mod series;
pub mod users;
pub mod utilization;
pub mod wait;

pub use domains::{DomainDowntime, DomainOutage, FaultDomain};
pub use energy::{energy_report, EnergyModel, EnergyReport};
pub use fairness::FairnessTracker;
pub use loc::LossOfCapacity;
pub use report::MetricsSummary;
pub use series::TimeSeries;
pub use utilization::UtilizationTracker;
pub use wait::WaitStats;
