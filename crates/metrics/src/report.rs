//! End-of-run metric summaries — the shape of the paper's Table II.

use amjs_sim::{SimDuration, SimTime};

/// The whole-run numbers one simulation produces, directly comparable to
/// one row of Table II (plus a few companions that experiments and tests
/// use).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSummary {
    /// Label of the configuration that produced this run (e.g.
    /// `"BF=0.5/W=4"`).
    pub label: String,
    /// Jobs that completed.
    pub jobs_completed: usize,
    /// Average waiting time in minutes (Table II column 1).
    pub avg_wait_mins: f64,
    /// Maximum waiting time in minutes.
    pub max_wait_mins: f64,
    /// Number of unfairly treated jobs (Table II column 2).
    pub unfair_jobs: usize,
    /// Loss of capacity, percent (Table II column 3).
    pub loc_percent: f64,
    /// Whole-run average utilization.
    pub avg_utilization: f64,
    /// Mean bounded slowdown (Feitelson), 0 when not tracked.
    pub mean_bounded_slowdown: f64,
    /// When the last job finished.
    pub makespan: SimDuration,
    /// Node-hours of capacity out of service (failed, awaiting repair);
    /// 0 when failure injection is off.
    pub node_downtime_hours: f64,
    /// Jobs given up on after exhausting their retry budget.
    pub abandoned_jobs: usize,
}

impl MetricsSummary {
    /// Render as one aligned text row; pair with [`table_header`].
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:>10.1} {:>8} {:>8.1} {:>8.3} {:>10.1} {:>8.1} {:>7}",
            self.label,
            self.avg_wait_mins,
            self.unfair_jobs,
            self.loc_percent,
            self.avg_utilization,
            self.makespan.as_hours_f64(),
            self.node_downtime_hours,
            self.abandoned_jobs,
        )
    }

    /// CSV row matching [`csv_header`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{:.3},{},{:.4},{:.5},{:.3},{:.3},{:.3},{}",
            self.label,
            self.jobs_completed,
            self.avg_wait_mins,
            self.max_wait_mins,
            self.unfair_jobs,
            self.loc_percent,
            self.avg_utilization,
            self.mean_bounded_slowdown,
            self.makespan.as_hours_f64(),
            self.node_downtime_hours,
            self.abandoned_jobs,
        )
    }
}

/// Header for [`MetricsSummary::table_row`].
pub fn table_header() -> String {
    format!(
        "{:<14} {:>10} {:>8} {:>8} {:>8} {:>10} {:>8} {:>7}",
        "config", "wait(min)", "unfair#", "LoC(%)", "util", "mkspan(h)", "down(nh)", "aband#"
    )
}

/// Header for [`MetricsSummary::csv_row`].
pub fn csv_header() -> &'static str {
    "config,jobs,avg_wait_mins,max_wait_mins,unfair_jobs,loc_percent,avg_utilization,mean_bounded_slowdown,makespan_hours,node_downtime_hours,abandoned_jobs"
}

/// Relative improvement of `new` over `base` in percent
/// (positive = `new` is smaller/better for a lower-is-better metric).
pub fn improvement_percent(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (base - new) / base * 100.0
}

/// Convenience: wrap a makespan end time given the epoch.
pub fn makespan_from(end: SimTime) -> SimDuration {
    end - SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSummary {
        MetricsSummary {
            label: "BF=1/W=1".to_string(),
            jobs_completed: 100,
            avg_wait_mins: 245.2,
            max_wait_mins: 900.0,
            unfair_jobs: 10,
            loc_percent: 15.7,
            avg_utilization: 0.81,
            mean_bounded_slowdown: 4.2,
            makespan: SimDuration::from_hours(720),
            node_downtime_hours: 12.5,
            abandoned_jobs: 2,
        }
    }

    #[test]
    fn rows_align_with_headers() {
        let s = sample();
        let header_cols = table_header().split_whitespace().count();
        let row_cols = s.table_row().split_whitespace().count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(
            csv_header().split(',').count(),
            s.csv_row().split(',').count()
        );
    }

    #[test]
    fn csv_row_contains_label_and_values() {
        let row = sample().csv_row();
        assert!(row.starts_with("BF=1/W=1,100,"));
        assert!(row.contains("245.200"));
    }

    #[test]
    fn improvement_math() {
        // Table II: 2D adaptive improves avg wait 245.2 → 71.3 ≈ 71%.
        let imp = improvement_percent(245.2, 71.3);
        assert!((imp - 70.92).abs() < 0.1, "imp={imp}");
        assert_eq!(improvement_percent(0.0, 5.0), 0.0);
        assert!(improvement_percent(10.0, 12.0) < 0.0);
    }

    #[test]
    fn makespan_from_epoch() {
        assert_eq!(
            makespan_from(SimTime::from_hours(3)),
            SimDuration::from_hours(3)
        );
    }
}
