//! Per-job waiting time accounting.
//!
//! "A job's waiting time refers to the time period between when the job
//! is submitted and when it is started. The average waiting time among
//! all finished jobs in a workload is usually measured to reflect the
//! 'efficiency' of a scheduling policy." (paper §IV-A). Reported in
//! minutes throughout, matching Table II.

use amjs_sim::SimDuration;
use amjs_workload::JobId;

/// Accumulates per-job waits as jobs start.
#[derive(Clone, Debug, Default)]
pub struct WaitStats {
    waits: Vec<(JobId, SimDuration)>,
    /// `(wait, runtime)` pairs for slowdown computation (recorded when
    /// the caller knows the runtime).
    slowdowns: Vec<(SimDuration, SimDuration)>,
}

impl WaitStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `job` waited `wait` before starting.
    ///
    /// # Panics
    /// Panics on a negative wait — a job cannot start before it is
    /// submitted.
    pub fn record(&mut self, job: JobId, wait: SimDuration) {
        assert!(!wait.is_negative(), "{job} has negative wait {wait}");
        self.waits.push((job, wait));
    }

    /// Number of recorded jobs.
    pub fn count(&self) -> usize {
        self.waits.len()
    }

    /// Average wait in minutes (0 for an empty record, matching how an
    /// idle system would be reported).
    pub fn mean_mins(&self) -> f64 {
        if self.waits.is_empty() {
            return 0.0;
        }
        let total: i64 = self.waits.iter().map(|&(_, w)| w.as_secs()).sum();
        total as f64 / 60.0 / self.waits.len() as f64
    }

    /// Maximum wait in minutes.
    pub fn max_mins(&self) -> f64 {
        self.waits
            .iter()
            .map(|&(_, w)| w.as_mins_f64())
            .fold(0.0, f64::max)
    }

    /// Median wait in minutes (0 for empty).
    pub fn median_mins(&self) -> f64 {
        if self.waits.is_empty() {
            return 0.0;
        }
        let mut secs: Vec<i64> = self.waits.iter().map(|&(_, w)| w.as_secs()).collect();
        secs.sort_unstable();
        let n = secs.len();
        let median_secs = if n % 2 == 1 {
            secs[n / 2] as f64
        } else {
            (secs[n / 2 - 1] + secs[n / 2]) as f64 / 2.0
        };
        median_secs / 60.0
    }

    /// The p-th percentile wait (0 < p <= 100) in minutes, by
    /// nearest-rank.
    pub fn percentile_mins(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 100.0);
        if self.waits.is_empty() {
            return 0.0;
        }
        let mut secs: Vec<i64> = self.waits.iter().map(|&(_, w)| w.as_secs()).collect();
        secs.sort_unstable();
        let rank = ((p / 100.0 * secs.len() as f64).ceil() as usize).clamp(1, secs.len());
        secs[rank - 1] as f64 / 60.0
    }

    /// Per-job records, in recording (start) order.
    pub fn records(&self) -> &[(JobId, SimDuration)] {
        &self.waits
    }

    /// Record a `(wait, runtime)` pair for slowdown accounting.
    pub fn record_slowdown(&mut self, wait: SimDuration, runtime: SimDuration) {
        assert!(!wait.is_negative() && runtime.as_secs() > 0);
        self.slowdowns.push((wait, runtime));
    }

    /// Mean *bounded slowdown* (Feitelson's standard responsiveness
    /// metric): `max(1, (wait + runtime) / max(runtime, bound))`, with
    /// the 10-second bound preventing tiny jobs from dominating.
    pub fn mean_bounded_slowdown(&self) -> f64 {
        const BOUND_SECS: f64 = 10.0;
        if self.slowdowns.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .slowdowns
            .iter()
            .map(|&(wait, runtime)| {
                let w = wait.as_secs() as f64;
                let r = runtime.as_secs() as f64;
                ((w + r) / r.max(BOUND_SECS)).max(1.0)
            })
            .sum();
        total / self.slowdowns.len() as f64
    }
}

impl amjs_sim::Snapshot for WaitStats {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        self.waits.encode(w);
        self.slowdowns.encode(w);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        use amjs_sim::Snapshot;
        Ok(WaitStats {
            waits: Snapshot::decode(r)?,
            slowdowns: Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(mins: i64) -> SimDuration {
        SimDuration::from_mins(mins)
    }

    #[test]
    fn mean_median_max() {
        let mut w = WaitStats::new();
        for (i, mins) in [0, 10, 20, 30, 100].iter().enumerate() {
            w.record(JobId(i as u64), d(*mins));
        }
        assert_eq!(w.count(), 5);
        assert!((w.mean_mins() - 32.0).abs() < 1e-9);
        assert_eq!(w.median_mins(), 20.0);
        assert_eq!(w.max_mins(), 100.0);
    }

    #[test]
    fn even_count_median_averages() {
        let mut w = WaitStats::new();
        w.record(JobId(0), d(10));
        w.record(JobId(1), d(20));
        assert_eq!(w.median_mins(), 15.0);
    }

    #[test]
    fn percentiles() {
        let mut w = WaitStats::new();
        for i in 1..=100 {
            w.record(JobId(i as u64), d(i));
        }
        assert_eq!(w.percentile_mins(50.0), 50.0);
        assert_eq!(w.percentile_mins(95.0), 95.0);
        assert_eq!(w.percentile_mins(100.0), 100.0);
        assert_eq!(w.percentile_mins(1.0), 1.0);
    }

    #[test]
    fn empty_is_zero() {
        let w = WaitStats::new();
        assert_eq!(w.mean_mins(), 0.0);
        assert_eq!(w.median_mins(), 0.0);
        assert_eq!(w.max_mins(), 0.0);
        assert_eq!(w.percentile_mins(99.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative wait")]
    fn negative_wait_panics() {
        let mut w = WaitStats::new();
        w.record(JobId(0), SimDuration::from_secs(-1));
    }

    #[test]
    fn bounded_slowdown_hand_computed() {
        let mut w = WaitStats::new();
        // No wait → slowdown exactly 1.
        w.record_slowdown(SimDuration::ZERO, SimDuration::from_secs(100));
        // Wait == runtime → slowdown 2.
        w.record_slowdown(SimDuration::from_secs(300), SimDuration::from_secs(300));
        // Tiny job: bound kicks in. wait 100 s, runtime 1 s →
        // (100+1)/max(1,10) = 10.1, not 101.
        w.record_slowdown(SimDuration::from_secs(100), SimDuration::from_secs(1));
        let mean = w.mean_bounded_slowdown();
        assert!((mean - (1.0 + 2.0 + 10.1) / 3.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn bounded_slowdown_empty_is_zero() {
        assert_eq!(WaitStats::new().mean_bounded_slowdown(), 0.0);
    }
}
