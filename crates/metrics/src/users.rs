//! Per-user service statistics.
//!
//! The paper measures fairness job-by-job; operators also read it
//! user-by-user ("whose jobs wait?"). This module aggregates per-job
//! outcomes by submitting user and computes a Gini coefficient over
//! per-user mean waits — 0 means every user waits the same on average,
//! values toward 1 mean service concentrates on a few users. SJF-style
//! policies typically *raise* it (users with long jobs absorb the
//! waiting), which is the per-user face of the paper's fairness
//! tradeoff.

use std::collections::BTreeMap;

use amjs_sim::SimDuration;

/// Aggregated service numbers for one user.
#[derive(Clone, Debug, PartialEq)]
pub struct UserServiceRow {
    /// The user id.
    pub user: u32,
    /// Jobs the user completed.
    pub jobs: usize,
    /// Mean waiting time, minutes.
    pub mean_wait_mins: f64,
    /// Worst waiting time, minutes.
    pub max_wait_mins: f64,
    /// Delivered node-hours.
    pub node_hours: f64,
}

/// Per-user aggregation of `(user, wait, nodes, runtime)` job records.
pub fn user_service(
    records: impl IntoIterator<Item = (u32, SimDuration, u32, SimDuration)>,
) -> Vec<UserServiceRow> {
    #[derive(Default)]
    struct Acc {
        jobs: usize,
        wait_secs: i64,
        max_wait_secs: i64,
        node_secs: f64,
    }
    let mut by_user: BTreeMap<u32, Acc> = BTreeMap::new();
    for (user, wait, nodes, runtime) in records {
        let a = by_user.entry(user).or_default();
        a.jobs += 1;
        a.wait_secs += wait.as_secs();
        a.max_wait_secs = a.max_wait_secs.max(wait.as_secs());
        a.node_secs += nodes as f64 * runtime.as_secs() as f64;
    }
    by_user
        .into_iter()
        .map(|(user, a)| UserServiceRow {
            user,
            jobs: a.jobs,
            mean_wait_mins: a.wait_secs as f64 / 60.0 / a.jobs as f64,
            max_wait_mins: a.max_wait_secs as f64 / 60.0,
            node_hours: a.node_secs / 3600.0,
        })
        .collect()
}

/// Gini coefficient over the rows' per-user mean waits (0 = equal
/// service, →1 = concentrated waiting). Zero for fewer than two users
/// or all-zero waits.
pub fn wait_gini(rows: &[UserServiceRow]) -> f64 {
    let mut waits: Vec<f64> = rows.iter().map(|r| r.mean_wait_mins.max(0.0)).collect();
    let n = waits.len();
    if n < 2 {
        return 0.0;
    }
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sum: f64 = waits.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, with 1-based
    // ranks over ascending x.
    let weighted: f64 = waits
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        user: u32,
        wait_mins: i64,
        nodes: u32,
        run_mins: i64,
    ) -> (u32, SimDuration, u32, SimDuration) {
        (
            user,
            SimDuration::from_mins(wait_mins),
            nodes,
            SimDuration::from_mins(run_mins),
        )
    }

    #[test]
    fn aggregates_per_user() {
        let rows = user_service(vec![
            rec(1, 10, 100, 60),
            rec(1, 30, 100, 60),
            rec(2, 0, 50, 120),
        ]);
        assert_eq!(rows.len(), 2);
        let u1 = &rows[0];
        assert_eq!(u1.user, 1);
        assert_eq!(u1.jobs, 2);
        assert_eq!(u1.mean_wait_mins, 20.0);
        assert_eq!(u1.max_wait_mins, 30.0);
        assert_eq!(u1.node_hours, 200.0);
        assert_eq!(rows[1].node_hours, 100.0);
    }

    #[test]
    fn gini_of_equal_waits_is_zero() {
        let rows = user_service(vec![rec(1, 10, 1, 1), rec(2, 10, 1, 1), rec(3, 10, 1, 1)]);
        assert!(wait_gini(&rows).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_waits_is_high() {
        // One user absorbs all the waiting.
        let rows = user_service(vec![
            rec(1, 0, 1, 1),
            rec(2, 0, 1, 1),
            rec(3, 0, 1, 1),
            rec(4, 1000, 1, 1),
        ]);
        let g = wait_gini(&rows);
        assert!(g > 0.7, "gini={g}");
        assert!(g <= 1.0);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(wait_gini(&[]), 0.0);
        let one = user_service(vec![rec(1, 5, 1, 1)]);
        assert_eq!(wait_gini(&one), 0.0);
        let zeros = user_service(vec![rec(1, 0, 1, 1), rec(2, 0, 1, 1)]);
        assert_eq!(wait_gini(&zeros), 0.0);
    }

    #[test]
    fn hand_computed_gini() {
        // Waits 1, 3: Gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        let rows = user_service(vec![rec(1, 1, 1, 1), rec(2, 3, 1, 1)]);
        assert!((wait_gini(&rows) - 0.25).abs() < 1e-12);
    }
}
