//! Energy accounting — the paper's §V names energy efficiency as the
//! first "system cost" metric to add to the balanced set.
//!
//! The model is the standard two-level node power model: a busy node
//! draws `busy_watts`, an idle node `idle_watts` (Blue Gene/P's selling
//! point was its low per-node power; Intrepid drew on the order of
//! 1.3 MW busy). Combined with the exact busy-time integral from
//! [`crate::UtilizationTracker`], this yields total energy and the
//! efficiency figure that actually differentiates schedulers: **energy
//! per delivered node-hour** — idle burn is amortized better when the
//! machine is kept busy, which is exactly what the paper's
//! utilization-oriented window tuning targets.

use amjs_sim::SimTime;

use crate::utilization::UtilizationTracker;

/// Two-level per-node power model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Power draw of a busy node, watts.
    pub busy_watts: f64,
    /// Power draw of an idle node, watts.
    pub idle_watts: f64,
}

impl EnergyModel {
    /// Blue Gene/P-flavored defaults: ~31 W busy, ~13 W idle per node
    /// (Intrepid's ~1.26 MW at full load over 40,960 nodes; idle draw
    /// dominated by memory and the always-on network).
    pub fn bgp() -> Self {
        EnergyModel {
            busy_watts: 31.0,
            idle_watts: 13.0,
        }
    }

    /// A commodity-cluster-flavored model (~300 W busy, ~150 W idle).
    pub fn commodity() -> Self {
        EnergyModel {
            busy_watts: 300.0,
            idle_watts: 150.0,
        }
    }
}

impl amjs_sim::Snapshot for EnergyModel {
    fn encode(&self, w: &mut amjs_sim::SnapWriter) {
        w.put_f64(self.busy_watts);
        w.put_f64(self.idle_watts);
    }
    fn decode(r: &mut amjs_sim::SnapReader<'_>) -> Result<Self, amjs_sim::SnapError> {
        Ok(EnergyModel {
            busy_watts: r.get_f64()?,
            idle_watts: r.get_f64()?,
        })
    }
}

/// Energy consumed and delivered over one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Total energy, megawatt-hours.
    pub total_mwh: f64,
    /// Energy spent on busy nodes, megawatt-hours.
    pub busy_mwh: f64,
    /// Energy spent keeping idle nodes powered, megawatt-hours.
    pub idle_mwh: f64,
    /// Delivered node-hours (busy node-time).
    pub delivered_node_hours: f64,
    /// Kilowatt-hours per delivered node-hour — the efficiency figure;
    /// lower is better and improves with utilization.
    pub kwh_per_node_hour: f64,
}

/// Compute the energy report for the span `[tracker start, until]`.
pub fn energy_report(
    tracker: &UtilizationTracker,
    model: EnergyModel,
    until: SimTime,
) -> EnergyReport {
    let total_nodes = tracker.total_nodes() as f64;
    let span_secs = tracker.elapsed_secs(until);
    let busy_node_secs = tracker.busy_node_secs(until);
    let idle_node_secs = (total_nodes * span_secs - busy_node_secs).max(0.0);

    const J_PER_MWH: f64 = 3.6e9;
    let busy_mwh = busy_node_secs * model.busy_watts / J_PER_MWH;
    let idle_mwh = idle_node_secs * model.idle_watts / J_PER_MWH;
    let delivered_node_hours = busy_node_secs / 3600.0;
    let total_mwh = busy_mwh + idle_mwh;
    EnergyReport {
        total_mwh,
        busy_mwh,
        idle_mwh,
        delivered_node_hours,
        kwh_per_node_hour: if delivered_node_hours > 0.0 {
            total_mwh * 1000.0 / delivered_node_hours
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amjs_sim::SimTime;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fully_busy_machine_energy() {
        // 100 nodes busy for one hour at 10 W busy / 1 W idle.
        let mut u = UtilizationTracker::new(100, t(0));
        u.set_busy(t(0), 100);
        let model = EnergyModel {
            busy_watts: 10.0,
            idle_watts: 1.0,
        };
        let r = energy_report(&u, model, t(3600));
        // 100 nodes * 3600 s * 10 W = 3.6e6 J = 1e-3 MWh.
        assert!((r.busy_mwh - 1e-3).abs() < 1e-12);
        assert_eq!(r.idle_mwh, 0.0);
        assert!((r.delivered_node_hours - 100.0).abs() < 1e-9);
        // 1e-3 MWh / 100 node-hours = 0.01 kWh per node-hour.
        assert!((r.kwh_per_node_hour - 0.01).abs() < 1e-9);
    }

    #[test]
    fn idle_machine_burns_idle_power_only() {
        let u = UtilizationTracker::new(10, t(0));
        let model = EnergyModel {
            busy_watts: 10.0,
            idle_watts: 2.0,
        };
        let r = energy_report(&u, model, t(3600));
        assert_eq!(r.busy_mwh, 0.0);
        // 10 nodes * 3600 s * 2 W = 72 kJ = 2e-5 MWh.
        assert!((r.idle_mwh - 2e-5).abs() < 1e-12);
        assert_eq!(r.kwh_per_node_hour, 0.0); // nothing delivered
    }

    #[test]
    fn higher_utilization_improves_efficiency() {
        let model = EnergyModel::bgp();
        // Run A: 50% busy for 2 h. Run B: 100% busy for 1 h then idle 1 h
        // — same delivered work, same span, same energy... with a
        // two-level model they tie; efficiency differs when comparing
        // different utilization over the same span and *different* work:
        let mut low = UtilizationTracker::new(100, t(0));
        low.set_busy(t(0), 25);
        let mut high = UtilizationTracker::new(100, t(0));
        high.set_busy(t(0), 75);
        let r_low = energy_report(&low, model, t(7200));
        let r_high = energy_report(&high, model, t(7200));
        assert!(r_high.kwh_per_node_hour < r_low.kwh_per_node_hour);
    }

    #[test]
    fn presets_are_sane() {
        assert!(EnergyModel::bgp().busy_watts > EnergyModel::bgp().idle_watts);
        assert!(EnergyModel::commodity().busy_watts > EnergyModel::bgp().busy_watts);
    }
}
