//! Scheduler-pass benchmarks along dimensions Table III does not cover:
//! queue depth scaling and backfill mode, at fixed window size.
//!
//! Run: `cargo bench -p amjs-bench --bench scheduler_pass`

use amjs_bench::{harness, timing};
use amjs_core::scheduler::{BackfillMode, QueuedJob, Scheduler};
use amjs_core::PolicyParams;
use amjs_platform::{AllocationId, Platform};
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::synth::WorkloadSpec;

fn make_queue(len: usize) -> Vec<QueuedJob> {
    let jobs = WorkloadSpec::intrepid_month().generate(7);
    jobs.iter()
        .take(len)
        .enumerate()
        .map(|(i, j)| QueuedJob {
            id: j.id,
            submit: SimTime::from_secs(i as i64 * 13),
            nodes: j.nodes,
            walltime: j.walltime,
        })
        .collect()
}

fn busy_machine() -> (amjs_platform::BgpCluster, Vec<(AllocationId, SimTime)>) {
    let mut machine = harness::intrepid();
    let mut releases = Vec::new();
    for i in 0..60 {
        if let Some(id) = machine.allocate(512 << (i % 3)) {
            releases.push((
                id,
                SimTime::from_hours(2) + SimDuration::from_mins(i as i64 * 17),
            ));
        }
    }
    (machine, releases)
}

fn bench_queue_depth_scaling() {
    let (machine, releases) = busy_machine();
    let release_of =
        |id: AllocationId| -> SimTime { releases.iter().find(|&&(i, _)| i == id).unwrap().1 };
    let now = SimTime::from_hours(1);
    let base_plan = machine.plan(now, &release_of);

    timing::group("pass_vs_queue_depth");
    for depth in [10usize, 50, 200] {
        let queue = make_queue(depth);
        let mut sched = Scheduler::new(PolicyParams::new(0.5, 1), BackfillMode::Easy);
        sched.backfill_depth = Some(harness::BACKFILL_DEPTH);
        timing::bench(&format!("jobs/{depth}"), || {
            sched.schedule_pass(now, &queue, &base_plan).starts.len()
        });
    }
}

fn bench_backfill_modes() {
    let (machine, releases) = busy_machine();
    let release_of =
        |id: AllocationId| -> SimTime { releases.iter().find(|&&(i, _)| i == id).unwrap().1 };
    let now = SimTime::from_hours(1);
    let base_plan = machine.plan(now, &release_of);
    let queue = make_queue(100);

    timing::group("pass_vs_backfill_mode");
    for (name, mode) in [
        ("none", BackfillMode::None),
        ("easy", BackfillMode::Easy),
        ("conservative", BackfillMode::Conservative),
    ] {
        let sched = Scheduler::new(PolicyParams::new(1.0, 1), mode);
        timing::bench(name, || {
            sched.schedule_pass(now, &queue, &base_plan).starts.len()
        });
    }
}

fn main() {
    bench_queue_depth_scaling();
    bench_backfill_modes();
}
