//! Criterion version of Table III: scheduler-pass latency vs. window
//! size on a congested Intrepid snapshot.
//!
//! Run: `cargo bench -p amjs-bench --bench table3`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use amjs_bench::harness;
use amjs_core::scheduler::{BackfillMode, QueuedJob, Scheduler};
use amjs_core::PolicyParams;
use amjs_platform::{AllocationId, BgpCluster, Platform};
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::synth::WorkloadSpec;

/// Congested snapshot: ~88%-busy machine, deep burst-era queue.
fn snapshot() -> (
    BgpCluster,
    Vec<(AllocationId, SimTime)>,
    Vec<QueuedJob>,
    SimTime,
) {
    let jobs = WorkloadSpec::intrepid_month().generate(harness::DEFAULT_SEED);
    let now = SimTime::from_hours(100);
    let mut machine = harness::intrepid();
    let mut releases = Vec::new();
    let mut i = 0usize;
    while machine.idle_nodes() > machine.total_nodes() / 8 && i < jobs.len() {
        let j = &jobs[i];
        i += 1;
        if let Some(id) = machine.allocate(j.nodes) {
            releases.push((id, now + SimDuration::from_mins(30 + (i as i64 * 37) % 720)));
        }
    }
    let queue: Vec<QueuedJob> = jobs
        .iter()
        .filter(|j| j.submit >= SimTime::from_hours(88) && j.submit < now)
        .map(|j| QueuedJob {
            id: j.id,
            submit: j.submit,
            nodes: j.nodes,
            walltime: j.walltime,
        })
        .collect();
    (machine, releases, queue, now)
}

fn bench_scheduling_iteration(c: &mut Criterion) {
    let (machine, releases, queue, now) = snapshot();
    let release_of =
        |id: AllocationId| -> SimTime { releases.iter().find(|&&(i, _)| i == id).unwrap().1 };
    let base_plan = machine.plan(now, &release_of);

    let mut group = c.benchmark_group("table3_scheduling_iteration");
    for w in 1..=5usize {
        group.bench_with_input(BenchmarkId::new("window", w), &w, |b, &w| {
            let mut sched = Scheduler::new(PolicyParams::new(0.5, w), BackfillMode::Easy);
            sched.easy_protected = Some(harness::EASY_PROTECTED);
            sched.backfill_depth = Some(harness::BACKFILL_DEPTH);
            b.iter(|| sched.schedule_pass(now, &queue, &base_plan).starts.len());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scheduling_iteration
}
criterion_main!(benches);
