//! Timed version of Table III: scheduler-pass latency vs. window
//! size on a congested Intrepid snapshot.
//!
//! Run: `cargo bench -p amjs-bench --bench table3`

use amjs_bench::{harness, timing};
use amjs_core::scheduler::{BackfillMode, QueuedJob, Scheduler};
use amjs_core::PolicyParams;
use amjs_platform::{AllocationId, BgpCluster, Platform};
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::synth::WorkloadSpec;

/// Congested snapshot: ~88%-busy machine, deep burst-era queue.
fn snapshot() -> (
    BgpCluster,
    Vec<(AllocationId, SimTime)>,
    Vec<QueuedJob>,
    SimTime,
) {
    let jobs = WorkloadSpec::intrepid_month().generate(harness::DEFAULT_SEED);
    let now = SimTime::from_hours(100);
    let mut machine = harness::intrepid();
    let mut releases = Vec::new();
    let mut i = 0usize;
    while machine.idle_nodes() > machine.total_nodes() / 8 && i < jobs.len() {
        let j = &jobs[i];
        i += 1;
        if let Some(id) = machine.allocate(j.nodes) {
            releases.push((id, now + SimDuration::from_mins(30 + (i as i64 * 37) % 720)));
        }
    }
    let queue: Vec<QueuedJob> = jobs
        .iter()
        .filter(|j| j.submit >= SimTime::from_hours(88) && j.submit < now)
        .map(|j| QueuedJob {
            id: j.id,
            submit: j.submit,
            nodes: j.nodes,
            walltime: j.walltime,
        })
        .collect();
    (machine, releases, queue, now)
}

fn main() {
    let (machine, releases, queue, now) = snapshot();
    let release_of =
        |id: AllocationId| -> SimTime { releases.iter().find(|&&(i, _)| i == id).unwrap().1 };
    let base_plan = machine.plan(now, &release_of);

    timing::group("table3_scheduling_iteration");
    for w in 1..=5usize {
        let mut sched = Scheduler::new(PolicyParams::new(0.5, w), BackfillMode::Easy);
        sched.easy_protected = Some(harness::EASY_PROTECTED);
        sched.backfill_depth = Some(harness::BACKFILL_DEPTH);
        timing::bench(&format!("window/{w}"), || {
            sched.schedule_pass(now, &queue, &base_plan).starts.len()
        });
    }
}
