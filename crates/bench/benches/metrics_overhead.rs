//! Overhead of the metrics monitor — the paper's framework adds runtime
//! metric tracking to every scheduling event, so its cost must stay
//! negligible against the scheduling pass itself.
//!
//! Run: `cargo bench -p amjs-bench --bench metrics_overhead`

use amjs_bench::timing;
use amjs_core::fairshare::fair_start_time;
use amjs_core::scheduler::QueuedJob;
use amjs_core::QueuePolicy;
use amjs_metrics::{LossOfCapacity, UtilizationTracker};
use amjs_platform::{BgpCluster, Platform};
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::WorkloadSpec;

fn bench_utilization_tracker() {
    // A month of step changes (two per job, ~4k jobs).
    let mut tracker = UtilizationTracker::new(40_960, SimTime::ZERO);
    for i in 0..8_000i64 {
        let t = SimTime::from_secs(i * 300);
        tracker.set_busy(t, ((i * 7919) % 40_000) as u32);
    }
    let end = SimTime::from_secs(8_000 * 300);

    timing::group("utilization");
    timing::bench("utilization_trailing_avg_24h", || {
        tracker.trailing_avg(end, SimDuration::from_hours(24))
    });
    timing::bench("utilization_instant", || tracker.instant(end));
}

fn bench_loc_accumulation() {
    timing::group("loss_of_capacity");
    timing::bench("loc_record_10k_events", || {
        let mut loc = LossOfCapacity::new(40_960);
        for i in 0..10_000i64 {
            loc.record_event(
                SimTime::from_secs(i * 60),
                ((i * 31) % 8_192) as u32,
                i % 3 == 0,
            );
        }
        loc.percent()
    });
}

/// The per-submission fairness drain at various queue depths — the
/// runner's second-most-expensive operation after the scheduling pass.
fn bench_fairness_drain() {
    let jobs = WorkloadSpec::intrepid_month().generate(3);
    let machine = BgpCluster::intrepid();
    let now = SimTime::from_hours(100);
    let plan = machine.plan(now, &|_| now);
    timing::group("fairness_drain");
    for depth in [10usize, 50, 200] {
        let queue: Vec<QueuedJob> = jobs
            .iter()
            .take(depth)
            .map(|j| QueuedJob {
                id: j.id,
                submit: j.submit,
                nodes: j.nodes,
                walltime: j.walltime,
            })
            .collect();
        let target = queue.last().unwrap().id;
        timing::bench(&format!("queue/{depth}"), || {
            fair_start_time(
                &plan,
                &queue,
                target,
                QueuePolicy::Balanced {
                    balance_factor: 1.0,
                },
                now,
                16,
            )
            .as_secs()
        });
    }
}

/// Synthetic trace generation throughput (a month in one call).
fn bench_workload_generation() {
    timing::group("workload");
    let mut seed = 0u64;
    timing::bench("generate_intrepid_month", || {
        seed += 1;
        WorkloadSpec::intrepid_month().generate(seed).len()
    });
}

fn main() {
    bench_utilization_tracker();
    bench_loc_accumulation();
    bench_fairness_drain();
    bench_workload_generation();
}
