//! Microbenchmarks of the machine models: live allocation/release and
//! plan placement queries — the primitives every scheduling iteration is
//! built from.
//!
//! Run: `cargo bench -p amjs-bench --bench allocator`

use amjs_bench::timing;
use amjs_platform::plan::Plan;
use amjs_platform::{BgpCluster, FlatCluster, Platform};
use amjs_sim::{SimDuration, SimTime};

/// Allocate-until-full then release-everything cycles.
fn bench_allocate_release() {
    timing::group("allocate_release_cycle");
    let sizes = [512u32, 1024, 2048, 4096, 512, 1024, 8192, 512];

    let mut machine = BgpCluster::intrepid();
    timing::bench("bgp_intrepid", || {
        let mut ids = Vec::with_capacity(64);
        let mut i = 0usize;
        while let Some(id) = machine.allocate(sizes[i % sizes.len()]) {
            ids.push(id);
            i += 1;
        }
        for id in ids {
            machine.release(id);
        }
        i
    });

    let mut machine = FlatCluster::new(40_960);
    timing::bench("flat_40960", || {
        let mut ids = Vec::with_capacity(64);
        let mut i = 0usize;
        while let Some(id) = machine.allocate(sizes[i % sizes.len()]) {
            ids.push(id);
            i += 1;
        }
        for id in ids {
            machine.release(id);
        }
        i
    });
}

/// `earliest_start` on plans with increasing commitment counts — the
/// inner loop of window permutation search and the fairness drain.
fn bench_plan_earliest_start() {
    timing::group("plan_earliest_start");
    for commitments in [8usize, 32, 128] {
        // Partitioned plan.
        let mut machine = BgpCluster::intrepid();
        let ids: Vec<_> = (0..40).filter_map(|_| machine.allocate(512)).collect();
        let now = SimTime::ZERO;
        let release = |_: amjs_platform::AllocationId| SimTime::from_hours(2);
        let mut plan = machine.plan(now, &release);
        for k in 0..commitments {
            let _ = plan
                .place_earliest(
                    1024,
                    SimDuration::from_mins(30 + (k as i64 * 13) % 300),
                    now,
                )
                .unwrap();
        }
        timing::bench(&format!("bgp/{commitments}"), || {
            plan.earliest_start(8192, SimDuration::from_hours(1), now)
                .as_secs()
        });
        let _ = ids;
    }
}

fn main() {
    bench_allocate_release();
    bench_plan_earliest_start();
}
