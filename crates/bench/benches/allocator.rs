//! Microbenchmarks of the machine models: live allocation/release and
//! plan placement queries — the primitives every scheduling iteration is
//! built from.
//!
//! Run: `cargo bench -p amjs-bench --bench allocator`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use amjs_platform::plan::Plan;
use amjs_platform::{BgpCluster, FlatCluster, Platform};
use amjs_sim::{SimDuration, SimTime};

/// Allocate-until-full then release-everything cycles.
fn bench_allocate_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate_release_cycle");
    group.bench_function("bgp_intrepid", |b| {
        let mut machine = BgpCluster::intrepid();
        let sizes = [512u32, 1024, 2048, 4096, 512, 1024, 8192, 512];
        b.iter(|| {
            let mut ids = Vec::with_capacity(64);
            let mut i = 0usize;
            while let Some(id) = machine.allocate(sizes[i % sizes.len()]) {
                ids.push(id);
                i += 1;
            }
            for id in ids {
                machine.release(id);
            }
            i
        });
    });
    group.bench_function("flat_40960", |b| {
        let mut machine = FlatCluster::new(40_960);
        let sizes = [512u32, 1024, 2048, 4096, 512, 1024, 8192, 512];
        b.iter(|| {
            let mut ids = Vec::with_capacity(64);
            let mut i = 0usize;
            while let Some(id) = machine.allocate(sizes[i % sizes.len()]) {
                ids.push(id);
                i += 1;
            }
            for id in ids {
                machine.release(id);
            }
            i
        });
    });
    group.finish();
}

/// `earliest_start` on plans with increasing commitment counts — the
/// inner loop of window permutation search and the fairness drain.
fn bench_plan_earliest_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_earliest_start");
    for commitments in [8usize, 32, 128] {
        // Partitioned plan.
        let mut machine = BgpCluster::intrepid();
        let ids: Vec<_> = (0..40).filter_map(|_| machine.allocate(512)).collect();
        let now = SimTime::ZERO;
        let release = |_: amjs_platform::AllocationId| SimTime::from_hours(2);
        let mut plan = machine.plan(now, &release);
        for k in 0..commitments {
            let _ = plan
                .place_earliest(
                    1024,
                    SimDuration::from_mins(30 + (k as i64 * 13) % 300),
                    now,
                )
                .unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("bgp", commitments),
            &commitments,
            |b, _| {
                b.iter(|| {
                    plan.earliest_start(8192, SimDuration::from_hours(1), now)
                        .as_secs()
                });
            },
        );
        let _ = ids;
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_allocate_release, bench_plan_earliest_start
}
criterion_main!(benches);
