//! Minimal timing harness for the `[[bench]]` binaries.
//!
//! The workspace builds fully offline, so the benches use this
//! self-contained measurement loop instead of an external framework:
//! warm up, calibrate an iteration count to a target sample duration,
//! take several samples, and report the median per-iteration time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of samples per benchmark; the median is reported.
const SAMPLES: usize = 7;

/// Target wall-clock duration of one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// Time `f` and print one `name  median/iter  (iters/sample)` line.
/// The closure's return value is passed through `black_box` so the
/// measured work cannot be optimised away.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up and calibration: find an iteration count whose total
    // runtime is close to the target sample duration.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET_SAMPLE / 2 || iters >= 1 << 24 {
            if elapsed < TARGET_SAMPLE / 2 {
                break;
            }
            let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = ((iters as f64 * scale).round() as u64).max(1);
            break;
        }
        iters *= 2;
    }

    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!(
        "{name:<44} {:>14}  ({iters} iters/sample)",
        fmt_secs(median)
    );
}

/// Human-readable duration: picks ns/µs/ms/s.
fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Print a benchmark-group heading.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sensible_units() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-6).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with('s'));
    }
}
