//! ASCII line charts for the figure experiments.
//!
//! Each figure binary renders the paper's plot directly into the
//! terminal / results file: multiple series share axes; each series gets
//! a glyph; later series draw over earlier ones where they collide
//! (legend order = paper legend order). Supports the log-scale variant
//! the paper uses in Fig. 4(b).

use amjs_metrics::TimeSeries;

/// Glyphs assigned to series in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render `series` (name, data) as an ASCII chart of `width`×`height`
/// characters (plot area, excluding axes). With `log_scale`, values are
/// plotted as `log10(1 + v)`.
pub fn ascii_chart(
    series: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
    log_scale: bool,
) -> String {
    assert!(width >= 10 && height >= 4, "chart too small");
    let transform = |v: f64| {
        if log_scale {
            (1.0 + v.max(0.0)).log10()
        } else {
            v
        }
    };

    // Common extents.
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut v_max = f64::NEG_INFINITY;
    for (_, s) in series {
        for &(t, v) in s.points() {
            let th = t.as_hours_f64();
            t_min = t_min.min(th);
            t_max = t_max.max(th);
            v_max = v_max.max(transform(v));
        }
    }
    if !t_min.is_finite() || t_max <= t_min {
        return "(no data)\n".to_string();
    }
    let v_min = 0.0;
    let v_max = if v_max <= v_min { v_min + 1.0 } else { v_max };

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(t, v) in s.points() {
            let x = ((t.as_hours_f64() - t_min) / (t_max - t_min) * (width - 1) as f64).round()
                as usize;
            let y_frac = (transform(v) - v_min) / (v_max - v_min);
            let y = ((1.0 - y_frac) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    // Legend.
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push('\n');
    // Plot with a y-axis rail.
    let y_label_top = if log_scale {
        format!("{:.2} (log10(1+v))", v_max)
    } else {
        format!("{v_max:.1}")
    };
    out.push_str(&format!("{y_label_top:>10} ┤\n"));
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10} └{}\n",
        format!("{v_min:.1}"),
        "─".repeat(width)
    ));
    out.push_str(&format!(
        "{:>12}{:<w$}{:>8}\n",
        format!("{t_min:.0}h"),
        "",
        format!("{t_max:.0}h"),
        w = width.saturating_sub(8)
    ));
    out
}

/// A job-centric ASCII Gantt chart: one row per job (sorted by start),
/// bars spanning `[start, end)` on a shared time axis. Intended for
/// small scenarios (demos, incident analysis), not month-long traces.
pub fn gantt(rows: &[(String, amjs_sim::SimTime, amjs_sim::SimTime)], width: usize) -> String {
    assert!(width >= 20, "gantt too narrow");
    if rows.is_empty() {
        return "(no jobs)\n".to_string();
    }
    let t0 = rows
        .iter()
        .map(|&(_, s, _)| s)
        .min()
        .unwrap()
        .as_hours_f64();
    let t1 = rows
        .iter()
        .map(|&(_, _, e)| e)
        .max()
        .unwrap()
        .as_hours_f64();
    let span = (t1 - t0).max(1e-9);
    let label_w = rows.iter().map(|(l, ..)| l.len()).max().unwrap().min(16);

    let mut sorted: Vec<&(String, amjs_sim::SimTime, amjs_sim::SimTime)> = rows.iter().collect();
    sorted.sort_by_key(|&&(_, s, e)| (s, e));

    let mut out = String::new();
    for (label, start, end) in sorted {
        let a = (((start.as_hours_f64() - t0) / span) * (width - 1) as f64).round() as usize;
        let b = (((end.as_hours_f64() - t0) / span) * (width - 1) as f64).round() as usize;
        let b = b.max(a + 1).min(width);
        let mut bar = vec![' '; width];
        bar[a..b].iter_mut().for_each(|c| *c = '█');
        let shown: String = label.chars().take(label_w).collect();
        out.push_str(&format!(
            "{shown:>label_w$} │{}\n",
            bar.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "{:>label_w$} └{}\n{:>label_w$}  {:<w2$}{:>8}\n",
        "",
        "─".repeat(width),
        "",
        format!("{t0:.1}h"),
        format!("{t1:.1}h"),
        w2 = width.saturating_sub(8)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amjs_sim::SimTime;

    fn ramp(name: &str, n: usize, scale: f64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for i in 0..n {
            s.push(SimTime::from_hours(i as i64), i as f64 * scale);
        }
        s
    }

    #[test]
    fn renders_legend_and_axes() {
        let a = ramp("fcfs", 50, 2.0);
        let b = ramp("adaptive", 50, 1.0);
        let chart = ascii_chart(&[("fcfs", &a), ("adaptive", &b)], 60, 12, false);
        assert!(chart.contains("* fcfs"));
        assert!(chart.contains("o adaptive"));
        assert!(chart.contains("0h"));
        assert!(chart.contains("49h"));
        // Plot rows are present.
        assert_eq!(chart.lines().count(), 12 + 4);
    }

    #[test]
    fn log_scale_compresses() {
        let a = ramp("x", 20, 1000.0);
        let chart = ascii_chart(&[("x", &a)], 40, 8, true);
        assert!(chart.contains("log10"));
    }

    #[test]
    fn empty_series_is_handled() {
        let s = TimeSeries::new("e");
        assert_eq!(ascii_chart(&[("e", &s)], 40, 8, false), "(no data)\n");
    }

    #[test]
    fn gantt_renders_bars_in_start_order() {
        let rows = vec![
            (
                "late".to_string(),
                SimTime::from_hours(2),
                SimTime::from_hours(4),
            ),
            (
                "early".to_string(),
                SimTime::from_hours(0),
                SimTime::from_hours(1),
            ),
        ];
        let g = gantt(&rows, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].contains("early"));
        assert!(lines[1].contains("late"));
        assert!(lines[0].contains('█'));
        assert!(g.contains("0.0h"));
        assert!(g.contains("4.0h"));
    }

    #[test]
    fn gantt_empty_is_handled() {
        assert_eq!(gantt(&[], 40), "(no jobs)\n");
    }
}
