//! # amjs-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! shared pieces they need:
//!
//! * [`harness`] — standard experiment setup (the Intrepid machine, the
//!   month-long synthetic trace, run configurations) and a parallel
//!   sweep runner (each simulation is single-threaded and deterministic,
//!   so fanning the BF×W grid across cores is free of ordering effects);
//! * [`chart`] — ASCII line charts so figure binaries can render the
//!   paper's plots directly into the terminal and experiment logs;
//! * [`table`] — aligned text tables for Table-II/III-style output;
//! * [`results`] — CSV/text output under `results/`;
//! * [`timing`] — the self-contained measurement loop the `benches/`
//!   binaries use (Table III and microbenchmarks).

#![warn(missing_docs)]

pub mod chart;
pub mod harness;
pub mod results;
pub mod table;
pub mod timing;
