//! Writing experiment outputs under `results/`.

use std::fs;
use std::path::{Path, PathBuf};

/// The results directory (created on demand): `results/` next to the
/// workspace root when run via `cargo run`, else under the current
/// directory.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench; the workspace root is
    // two levels up. Fall back to CWD outside cargo.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base.join("results");
    fs::create_dir_all(&dir).expect("cannot create results/");
    dir
}

/// Write one result file (overwrites) and return its path.
pub fn write_result(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_back() {
        let path = write_result("self_test.txt", "hello\n");
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        fs::remove_file(path).unwrap();
    }
}
