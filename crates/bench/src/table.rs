//! Aligned text tables for Table-II/III-style output.

/// Render rows of cells as an aligned text table with a header rule.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Left-align the first column (labels), right-align numbers.
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format a float with the given decimals (helper for table cells).
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render(
            &["config", "wait", "unfair"],
            &[
                vec!["BF=1/W=1".into(), "245.2".into(), "10".into()],
                vec!["2D Adapt.".into(), "71.3".into(), "19".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("config"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric columns right-aligned: both rows end at same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(12.345, 2), "12.35");
        assert_eq!(num(10.0, 1), "10.0");
    }
}
