//! Shared experiment setup and the parallel sweep runner.
//!
//! All experiment binaries use the same machine (Intrepid's geometry),
//! the same seeded month-long synthetic trace, and the same run
//! configurations, so their outputs are directly comparable — exactly
//! like the paper, which runs every policy over the same trace.

use amjs_core::adaptive::AdaptiveScheme;
use amjs_core::runner::{SimulationBuilder, SimulationOutcome};
use amjs_core::scheduler::BackfillMode;
use amjs_core::PolicyParams;
use amjs_platform::{BgpCluster, Platform};
use amjs_workload::{Job, WorkloadSpec};

/// The master seed every experiment uses unless overridden on the
/// command line (`--seed N`).
pub const DEFAULT_SEED: u64 = 42;

/// The production backfill depth used by every experiment (Cobalt-like:
/// only the first N queued jobs are backfill candidates; see
/// `amjs_core::Scheduler::backfill_depth` and DESIGN.md §7).
pub const BACKFILL_DEPTH: usize = 16;

/// The classic-EASY protection used by every experiment: only the
/// highest-priority reservation is inviolable (see
/// `amjs_core::Scheduler::easy_protected` and DESIGN.md §4).
pub const EASY_PROTECTED: usize = 1;

/// The paper's machine: Intrepid, 40,960 nodes as 80 midplanes of 512.
pub fn intrepid() -> BgpCluster {
    BgpCluster::intrepid()
}

/// The paper's workload stand-in: one month of Intrepid-like load with
/// the hour-100 burst (see `amjs-workload::synth`).
pub fn intrepid_month_jobs(seed: u64) -> Vec<Job> {
    WorkloadSpec::intrepid_month().generate(seed)
}

/// One simulation configuration in a sweep.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Row label (defaults to the policy label when built via helpers).
    pub label: String,
    /// Static policy (initial policy when adaptive).
    pub policy: PolicyParams,
    /// Backfilling mode.
    pub backfill: BackfillMode,
    /// Adaptive tuning scheme (empty = static).
    pub adaptive: AdaptiveScheme,
}

impl RunConfig {
    /// A static `(BF, W)` configuration with EASY backfilling.
    pub fn fixed(bf: f64, window: usize) -> Self {
        let policy = PolicyParams::new(bf, window);
        RunConfig {
            label: policy.label(),
            policy,
            backfill: BackfillMode::Easy,
            adaptive: AdaptiveScheme::none(),
        }
    }

    /// The paper's "BF Adapt." row.
    pub fn bf_adaptive(threshold_mins: f64) -> Self {
        RunConfig {
            label: "BF Adapt.".to_string(),
            policy: PolicyParams::fcfs(),
            backfill: BackfillMode::Easy,
            adaptive: AdaptiveScheme::bf_adaptive(threshold_mins),
        }
    }

    /// The paper's "W Adapt." row.
    pub fn window_adaptive() -> Self {
        RunConfig {
            label: "W Adapt.".to_string(),
            policy: PolicyParams::fcfs(),
            backfill: BackfillMode::Easy,
            adaptive: AdaptiveScheme::window_adaptive(),
        }
    }

    /// The paper's "2D Adapt." row.
    pub fn two_d_adaptive(threshold_mins: f64) -> Self {
        RunConfig {
            label: "2D Adapt.".to_string(),
            policy: PolicyParams::fcfs(),
            backfill: BackfillMode::Easy,
            adaptive: AdaptiveScheme::two_d(threshold_mins),
        }
    }

    /// Rename the row.
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Change the backfilling mode.
    pub fn with_backfill(mut self, mode: BackfillMode) -> Self {
        self.backfill = mode;
        self
    }
}

/// Run one configuration on a fresh `platform` over `jobs`.
pub fn run_one<P: Platform>(platform: P, jobs: Vec<Job>, config: &RunConfig) -> SimulationOutcome {
    SimulationBuilder::new(platform, jobs)
        .policy(config.policy)
        .backfill(config.backfill)
        .adaptive(config.adaptive.clone())
        .easy_protected(Some(EASY_PROTECTED))
        .backfill_depth(Some(BACKFILL_DEPTH))
        .label(config.label.clone())
        .run()
}

/// Run a set of configurations over the same trace in parallel, one
/// thread per configuration (each simulation is single-threaded and
/// deterministic; results come back in input order regardless of
/// completion order).
pub fn run_sweep<P, F>(
    platform_factory: F,
    jobs: &[Job],
    configs: &[RunConfig],
) -> Vec<SimulationOutcome>
where
    P: Platform,
    F: Fn() -> P + Sync,
{
    let mut slots: Vec<Option<SimulationOutcome>> = Vec::new();
    slots.resize_with(configs.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(configs.len());
        for config in configs {
            let factory = &platform_factory;
            let jobs = jobs.to_vec();
            handles.push(scope.spawn(move || run_one(factory(), jobs, config)));
        }
        for (slot, handle) in slots.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("simulation thread panicked"));
        }
    });

    slots.into_iter().map(Option::unwrap).collect()
}

/// Run fully-specified grid points on the fault-tolerant fleet engine
/// (`amjs-fleet`): supervised workers, panics retried with backoff,
/// results journaling-ready. `workers == 1` reproduces the old
/// sequential behaviour exactly — the digests come back in spec order
/// either way, so the output is byte-identical across worker counts.
///
/// # Panics
/// Panics when a run stays degraded after its retry budget — an
/// experiment binary has no use for a partial grid.
pub fn run_fleet_sweep(
    specs: &[amjs_core::RunSpec],
    workers: usize,
) -> (Vec<amjs_fleet::RunDigest>, amjs_fleet::FleetReport) {
    let cfg = amjs_fleet::FleetConfig {
        workers: workers.max(1),
        heartbeat: Some(std::time::Duration::from_secs(10)),
        ..amjs_fleet::FleetConfig::default()
    };
    let report = amjs_fleet::run_fleet(specs, &cfg, amjs_fleet::default_exec(), None)
        .expect("fleet sweep failed");
    let digests = report
        .records
        .iter()
        .map(|slot| {
            let rec = slot.as_ref().expect("fleet left a run undispatched");
            rec.digest.clone().unwrap_or_else(|| {
                panic!(
                    "run {} ended {} after {} attempts: {}",
                    rec.key,
                    rec.status.as_str(),
                    rec.attempts,
                    rec.error.as_deref().unwrap_or("no error recorded")
                )
            })
        })
        .collect();
    (digests, report)
}

/// Like [`run_fleet_sweep`], but keep every run's *full*
/// [`SimulationOutcome`] (sampled time series included) instead of the
/// compact digest — for the figure binaries, which chart queue-depth
/// and utilization series. Outcomes ride back around the digests
/// through a side channel keyed by spec, so they come back in spec
/// order regardless of completion order; `workers == 1` reproduces the
/// old sequential output byte-for-byte.
///
/// # Panics
/// Panics when a run stays degraded after its retry budget.
pub fn run_fleet_outcomes(specs: &[amjs_core::RunSpec], workers: usize) -> Vec<SimulationOutcome> {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    let side: Arc<Mutex<BTreeMap<String, SimulationOutcome>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let exec: amjs_fleet::Exec = {
        let side = side.clone();
        Arc::new(move |spec| {
            let outcome = spec.execute();
            let digest = amjs_fleet::RunDigest::from_outcome(&outcome);
            // A retried run simply overwrites its slot — re-execution is
            // deterministic, so the replacement is identical.
            side.lock().unwrap().insert(spec.key.clone(), outcome);
            digest
        })
    };
    let cfg = amjs_fleet::FleetConfig {
        workers: workers.max(1),
        heartbeat: Some(std::time::Duration::from_secs(10)),
        ..amjs_fleet::FleetConfig::default()
    };
    let report = amjs_fleet::run_fleet(specs, &cfg, exec, None).expect("fleet sweep failed");
    for slot in &report.records {
        let rec = slot.as_ref().expect("fleet left a run undispatched");
        assert!(
            rec.digest.is_some(),
            "run {} ended {} after {} attempts: {}",
            rec.key,
            rec.status.as_str(),
            rec.attempts,
            rec.error.as_deref().unwrap_or("no error recorded")
        );
    }
    let mut side = side.lock().unwrap();
    specs
        .iter()
        .map(|spec| {
            side.remove(&spec.key)
                .unwrap_or_else(|| panic!("run {} left no outcome", spec.key))
        })
        .collect()
}

/// Write the fleet throughput benchmark (runs/s, aggregate passes/s,
/// per-run wall-clock quartiles) to `results/BENCH_sweep.json`.
pub fn write_sweep_bench(report: &amjs_fleet::FleetReport) {
    let path = crate::results::write_result(
        "BENCH_sweep.json",
        &amjs_fleet::bench_json(report, &report.records),
    );
    eprintln!("wrote {}", path.display());
}

/// Parse `--seed N` and `--fast` from command-line arguments.
/// `--fast` swaps the month trace for the one-week preset so every
/// binary can be smoke-tested quickly; returns `(seed, fast)`.
pub fn parse_args() -> (u64, bool) {
    let mut seed = DEFAULT_SEED;
    let mut fast = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"));
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            other => panic!("unknown argument {other:?} (supported: --seed N, --fast)"),
        }
    }
    (seed, fast)
}

/// Parse `--seed N`, `--fast`, and `--jobs N`; returns
/// `(seed, fast, workers)`. `default_workers` is what `--jobs` falls
/// back to: the machine's parallelism for throughput sweeps, or 1 for
/// timing experiments (parallel cells contend for cores and contaminate
/// each other's wall-clock numbers).
pub fn parse_args_with_jobs(default_workers: usize) -> (u64, bool, usize) {
    let mut seed = DEFAULT_SEED;
    let mut fast = false;
    let mut workers = default_workers;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"));
                i += 2;
            }
            "--jobs" => {
                workers = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--jobs needs an integer"));
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            other => panic!("unknown argument {other:?} (supported: --seed N, --fast, --jobs N)"),
        }
    }
    (seed, fast, workers)
}

/// The machine's available parallelism — the `--jobs` default for
/// throughput sweeps.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The experiment trace honoring `--fast`.
pub fn experiment_jobs(seed: u64, fast: bool) -> Vec<Job> {
    if fast {
        WorkloadSpec::intrepid_week().generate(seed)
    } else {
        intrepid_month_jobs(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amjs_platform::FlatCluster;

    #[test]
    fn sweep_preserves_config_order_and_determinism() {
        let jobs = WorkloadSpec::small_test().generate(3);
        let configs = vec![
            RunConfig::fixed(1.0, 1),
            RunConfig::fixed(0.5, 2),
            RunConfig::fixed(0.0, 1),
        ];
        let sweep = run_sweep(|| FlatCluster::new(512), &jobs, &configs);
        assert_eq!(sweep.len(), 3);
        for (cfg, out) in configs.iter().zip(&sweep) {
            assert_eq!(out.summary.label, cfg.label);
        }
        // Sweep result equals a directly-run simulation.
        let direct = run_one(FlatCluster::new(512), jobs, &configs[1]);
        assert_eq!(direct.summary, sweep[1].summary);
    }

    #[test]
    fn fleet_outcomes_match_direct_runs_across_worker_counts() {
        use amjs_core::{MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
        let specs: Vec<RunSpec> = [(1.0, 1), (0.5, 2), (0.0, 1)]
            .iter()
            .map(|&(bf, w)| {
                RunSpec::new(
                    format!("bf{bf}-w{w}"),
                    MachineSpec::Flat { nodes: 1024 },
                    WorkloadSource::Preset {
                        name: PresetName::Small,
                        seed: 3,
                        load_factor: 1.0,
                    },
                    PolicyParams::new(bf, w),
                )
            })
            .collect();
        let seq = run_fleet_outcomes(&specs, 1);
        let par = run_fleet_outcomes(&specs, 3);
        assert_eq!(seq.len(), 3);
        for ((spec, a), b) in specs.iter().zip(&seq).zip(&par) {
            assert_eq!(a.summary.label, spec.label, "outcomes in spec order");
            assert_eq!(a.summary, b.summary, "worker count changed an outcome");
            assert_eq!(
                a.queue_depth.points(),
                b.queue_depth.points(),
                "worker count changed a sampled series"
            );
        }
        // The side channel carries the same result a direct execute gives.
        assert_eq!(seq[1].summary, specs[1].execute().summary);
    }

    #[test]
    fn config_helpers_have_paper_labels() {
        assert_eq!(RunConfig::fixed(0.5, 4).label, "BF=0.5/W=4");
        assert_eq!(RunConfig::bf_adaptive(1000.0).label, "BF Adapt.");
        assert_eq!(RunConfig::window_adaptive().label, "W Adapt.");
        assert_eq!(RunConfig::two_d_adaptive(1000.0).label, "2D Adapt.");
    }
}
