//! Ablation: sensitivity of BF tuning to the queue-depth threshold.
//!
//! The paper sets the threshold "based on the whole month's average" and
//! notes it could come from any recent period. This experiment sweeps
//! the threshold across multiples of the base run's average queue depth
//! to show how sensitive the adaptive scheme's balance (wait vs.
//! fairness) is to that operator-chosen constant — and to locate the
//! regime where tuning degenerates into static FCFS (threshold → ∞) or
//! static BF=0.5 (threshold → 0).
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_threshold [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_threshold: {} jobs", jobs.len());

    let base = harness::run_one(harness::intrepid(), jobs.clone(), &RunConfig::fixed(1.0, 1));
    let avg_qd = base.queue_depth.mean_value().unwrap_or(1000.0);

    let multiples = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, f64::INFINITY];
    let configs: Vec<RunConfig> = multiples
        .iter()
        .map(|&m| {
            let th = if m.is_infinite() {
                f64::MAX
            } else {
                avg_qd * m
            };
            RunConfig::bf_adaptive(th).named(if m.is_infinite() {
                "th=inf (≈FCFS)".to_string()
            } else {
                format!("th={m}x avg")
            })
        })
        .collect();
    let outcomes = harness::run_sweep(harness::intrepid, &jobs, &configs);

    let header = [
        "threshold",
        "wait(min)",
        "unfair#",
        "LoC(%)",
        "time at BF=0.5 (%)",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let at_low = o
                .bf_series
                .points()
                .iter()
                .filter(|&&(_, v)| v < 0.75)
                .count() as f64
                / o.bf_series.len().max(1) as f64
                * 100.0;
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.summary.unfair_jobs.to_string(),
                table::num(o.summary.loc_percent, 1),
                table::num(at_low, 0),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — BF-tuner threshold sensitivity ({} jobs, seed {seed}, avg QD {avg_qd:.0} min)\n\n",
        jobs.len()
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(&format!(
        "\nstatic endpoints for reference: BF=1 wait {:.1} / unfair {}, threshold 0 ≈ static BF=0.5\n",
        base.summary.avg_wait_mins, base.summary.unfair_jobs
    ));
    print!("{out}");
    results::write_result("ablation_threshold.txt", &out);
}
