//! Table II — overall improvement of adaptive tuning.
//!
//! Reproduces the paper's central comparison: seven configurations over
//! the same month-long trace on the Intrepid machine, reporting average
//! waiting time (minutes), number of unfair jobs, and loss of capacity
//! (percent):
//!
//! ```text
//! BF=1/W=1   (the base: FCFS + EASY backfilling)
//! BF=1/W=4
//! BF=0.5/W=1
//! BF=0.5/W=4
//! BF Adapt.  (queue-depth-triggered BF 1 ↔ 0.5)
//! W  Adapt.  (utilization-trend-triggered W 1 ↔ 4)
//! 2D Adapt.  (both)
//! ```
//!
//! The BF tuner's queue-depth threshold follows the paper: "this is set
//! based on the whole month's average" — we pre-run the base
//! configuration and use its mean queue depth.
//!
//! The six post-threshold runs go through the fault-tolerant fleet
//! engine (`amjs-fleet`); the base run stays sequential because the
//! adaptive threshold is computed from it. `--jobs 1` reproduces the
//! old sequential output byte-for-byte.
//!
//! Usage: `cargo run -p amjs-bench --release --bin table2
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::{AdaptiveKind, MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_metrics::report::improvement_percent;

fn main() {
    let (seed, fast, workers) = harness::parse_args_with_jobs(harness::default_workers());
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!(
        "table2: {} jobs over {:.0} h (seed {seed}, {workers} workers)",
        jobs.len(),
        jobs.last().map(|j| j.submit.as_hours_f64()).unwrap_or(0.0)
    );

    // Base pre-run for the adaptive threshold (also Table II row 1).
    let base = harness::run_one(harness::intrepid(), jobs.clone(), &RunConfig::fixed(1.0, 1));
    let threshold = base.queue_depth.mean_value().unwrap_or(1000.0);
    eprintln!("table2: base mean queue depth {threshold:.0} min → adaptive threshold");

    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };
    let workload = WorkloadSource::Preset {
        name: preset,
        seed,
        load_factor: 1.0,
    };
    let fixed = |bf: f64, w: usize| {
        RunSpec::new(
            format!("bf{bf}-w{w}"),
            MachineSpec::intrepid(),
            workload.clone(),
            PolicyParams::new(bf, w),
        )
    };
    let adaptive = |key: &str, kind: AdaptiveKind| {
        let mut s = RunSpec::new(
            key,
            MachineSpec::intrepid(),
            workload.clone(),
            PolicyParams::fcfs(),
        );
        s.label = match kind {
            AdaptiveKind::Bf { .. } => "BF Adapt.".to_string(),
            AdaptiveKind::Window => "W Adapt.".to_string(),
            AdaptiveKind::TwoD { .. } => "2D Adapt.".to_string(),
            AdaptiveKind::None => unreachable!("static rows use `fixed`"),
        };
        s.adaptive = kind;
        s
    };
    let specs = vec![
        fixed(1.0, 4),
        fixed(0.5, 1),
        fixed(0.5, 4),
        adaptive("bf-adaptive", AdaptiveKind::Bf { threshold }),
        adaptive("w-adaptive", AdaptiveKind::Window),
        adaptive("2d-adaptive", AdaptiveKind::TwoD { threshold }),
    ];
    let mut outcomes = vec![base];
    outcomes.extend(harness::run_fleet_outcomes(&specs, workers));

    let header = [
        "configuration",
        "avg. wait (min)",
        "unfair #",
        "LoC (%)",
        "util",
        "backfills",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.summary.unfair_jobs.to_string(),
                table::num(o.summary.loc_percent, 1),
                table::num(o.summary.avg_utilization, 3),
                o.backfilled_starts.to_string(),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str("Table II — improvement of adaptive tuning\n");
    out.push_str(&format!(
        "(workload: {} jobs, seed {seed}{}; threshold {threshold:.0} min)\n\n",
        jobs.len(),
        if fast { ", --fast week trace" } else { "" }
    ));
    out.push_str(&table::render(&header, &rows));

    // The paper's headline: 2D adaptive vs. base.
    let base_s = &outcomes[0].summary;
    let twod = &outcomes.last().unwrap().summary;
    out.push_str(&format!(
        "\n2D Adapt. vs base: wait {:+.0}%, LoC {:+.0}%, unfair x{:.1}\n",
        -improvement_percent(base_s.avg_wait_mins, twod.avg_wait_mins),
        -improvement_percent(base_s.loc_percent, twod.loc_percent),
        twod.unfair_jobs as f64 / base_s.unfair_jobs.max(1) as f64,
    ));
    out.push_str("(paper: wait -71%, LoC -23%, unfair x2 — shape target, not absolute values)\n");

    print!("{out}");
    let mut csv = String::from(amjs_metrics::report::csv_header());
    csv.push('\n');
    for o in &outcomes {
        csv.push_str(&o.summary.csv_row());
        csv.push('\n');
    }
    let txt = results::write_result("table2.txt", &out);
    let csvp = results::write_result("table2.csv", &csv);
    eprintln!("table2: wrote {} and {}", txt.display(), csvp.display());
}
