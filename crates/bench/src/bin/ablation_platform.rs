//! Ablation: partitioned vs. idealized machine.
//!
//! Loss of Capacity has two sources: *fragmentation* (idle nodes exist
//! but no free partition of the right shape) and *admission holdback*
//! (a fitting job is kept waiting to protect a reservation). The flat
//! machine has no geometry, so it isolates the second source; the gap
//! between the two machines is the fragmentation cost of the Blue
//! Gene/P partition discipline — the phenomenon eq. (4) was designed to
//! expose.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_platform [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_platform::{BgpCluster, FlatCluster};
use amjs_workload::synth::SizeClass;
use amjs_workload::WorkloadSpec;

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_platform: {} jobs", jobs.len());

    let configs = [
        RunConfig::fixed(1.0, 1),
        RunConfig::fixed(0.5, 1),
        RunConfig::fixed(0.5, 4),
    ];

    let mut rows = Vec::new();
    for config in &configs {
        let bgp = harness::run_one(harness::intrepid(), jobs.clone(), config);
        let flat = harness::run_one(FlatCluster::new(40_960), jobs.clone(), config);
        rows.push(vec![
            format!("{} bgp", config.label),
            table::num(bgp.summary.avg_wait_mins, 1),
            table::num(bgp.summary.loc_percent, 1),
            table::num(bgp.summary.avg_utilization, 3),
        ]);
        rows.push(vec![
            format!("{} flat", config.label),
            table::num(flat.summary.avg_wait_mins, 1),
            table::num(flat.summary.loc_percent, 1),
            table::num(flat.summary.avg_utilization, 3),
        ]);
    }

    let header = ["config/machine", "wait(min)", "LoC(%)", "util"];
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — partitioned (bgp) vs idealized (flat) machine ({} jobs, seed {seed})\n\n",
        jobs.len()
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nThe bgp-minus-flat LoC gap is the fragmentation cost of aligned\n\
         power-of-two partitions (plus partition round-up inflating demand);\n\
         the flat machine's residual LoC is pure reservation holdback.\n",
    );

    // Second panel: partition granularity. A workload with a dev-job
    // tail (64-256 nodes, ~1/3 of submissions) on the midplane-grained
    // machine (everything rounds up to 512) vs the sub-midplane machine
    // (64-node partitions allocate exactly).
    let mut spec = WorkloadSpec::intrepid_month();
    spec.size_classes.extend([
        SizeClass {
            nodes: 64,
            weight: 20.0,
        },
        SizeClass {
            nodes: 128,
            weight: 15.0,
        },
        SizeClass {
            nodes: 256,
            weight: 10.0,
        },
    ]);
    let dev_jobs = spec.generate(seed);
    let config = RunConfig::fixed(1.0, 1);
    let coarse = harness::run_one(harness::intrepid(), dev_jobs.clone(), &config);
    let fine = harness::run_one(BgpCluster::intrepid_fine(), dev_jobs.clone(), &config);
    out.push_str(&format!(
        "\npartition granularity (same trace + dev-job tail, {} jobs, FCFS):\n",
        dev_jobs.len()
    ));
    out.push_str(&table::render(
        &["granularity", "wait(min)", "LoC(%)", "util"],
        &[
            vec![
                "midplane (512)".into(),
                table::num(coarse.summary.avg_wait_mins, 1),
                table::num(coarse.summary.loc_percent, 1),
                table::num(coarse.summary.avg_utilization, 3),
            ],
            vec![
                "sub-midplane (64)".into(),
                table::num(fine.summary.avg_wait_mins, 1),
                table::num(fine.summary.loc_percent, 1),
                table::num(fine.summary.avg_utilization, 3),
            ],
        ],
    ));
    out.push_str(
        "\nCoarse granularity rounds every 64-256-node dev job up to a full\n\
         midplane — internal fragmentation the sub-midplane machine avoids.\n",
    );
    print!("{out}");
    results::write_result("ablation_platform.txt", &out);
}
