//! Related-work baseline: the dynP self-tuning scheduler vs. the
//! paper's adaptive metric-aware tuning.
//!
//! §II of the paper distinguishes its approach from Streit's dynP,
//! which "switches policy between FCFS, SJF, and LJF based on the
//! number of jobs in the queue", arguing that fine-grained tuning of
//! BF/W on monitored metrics is superior to coarse whole-policy
//! switching. This experiment puts that claim to the test on the same
//! trace: dynP (two threshold settings) against the paper's BF-adaptive
//! and 2D-adaptive schemes.
//!
//! Usage: `cargo run -p amjs-bench --release --bin baseline_dynp [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::adaptive::AdaptiveScheme;

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("baseline_dynp: {} jobs", jobs.len());

    let base = harness::run_one(harness::intrepid(), jobs.clone(), &RunConfig::fixed(1.0, 1));
    let threshold = base.queue_depth.mean_value().unwrap_or(1000.0);

    let mut dynp_sensitive = RunConfig::bf_adaptive(threshold).named("dynP (10/80)");
    dynp_sensitive.adaptive = AdaptiveScheme::dynp(10, 80);
    let mut dynp_tolerant = RunConfig::bf_adaptive(threshold).named("dynP (30/150)");
    dynp_tolerant.adaptive = AdaptiveScheme::dynp(30, 150);

    let configs = vec![
        dynp_sensitive,
        dynp_tolerant,
        RunConfig::bf_adaptive(threshold),
        RunConfig::two_d_adaptive(threshold),
    ];
    let mut outcomes = vec![base];
    outcomes.extend(harness::run_sweep(harness::intrepid, &jobs, &configs));

    let header = ["scheme", "wait(min)", "unfair#", "LoC(%)", "peak QD(min)"];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.summary.unfair_jobs.to_string(),
                table::num(o.summary.loc_percent, 1),
                table::num(o.queue_depth.max_value().unwrap_or(0.0), 0),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Baseline — dynP policy switching vs metric-aware adaptive tuning\n\
         ({} jobs, seed {seed}, threshold {threshold:.0} min)\n\n",
        jobs.len()
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\ndynP switches the whole queue ordering (FCFS -> SJF -> LJF) on queue\n\
         length; the paper's schemes tune BF/W continuously on monitored\n\
         metrics. The paper's §II claim is that fine-grained metric-aware\n\
         tuning balances wait and fairness better than coarse switching.\n",
    );
    print!("{out}");
    results::write_result("baseline_dynp.txt", &out);
}
