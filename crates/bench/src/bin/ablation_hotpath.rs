//! Hot-path perf trajectory (ISSUE 9): how fast is the incremental
//! scheduler, and is it still byte-identical to the naive one?
//!
//! Runs the month-long Intrepid trace on the optimized hot path
//! (dirty-score cache + memoized availability profiles + word-level
//! mask walks) and on the reference path
//! ([`SimulationBuilder::reference_hotpath`]: full score recomputes,
//! full commitment scans, bit-at-a-time masks), asserting the two
//! produce the same summary row, then records the trajectory in
//! `results/BENCH_hotpath.json`:
//!
//! * wall-clock quartiles over best-of-N interleaved reps, passes/s and
//!   derived events/s for both paths, and their speedup;
//! * a per-span breakdown of one profiled optimized run;
//! * an allocator microbench: word-parallel [`UnitMask`] range ops and
//!   buddy scans vs their naive bit-loop counterparts.
//!
//! The run is gated: optimized passes/s must stay above
//! `FLOOR_PASSES_PER_S × 0.9` (override the floor with
//! `AMJS_HOTPATH_FLOOR=<passes/s>`; `--fast` skips the gate). CI runs
//! this gate in the perf-trajectory job.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_hotpath [--seed N] [--fast]`

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::runner::SimulationBuilder;
use amjs_obs::{Observer, Profiler};
use amjs_platform::mask::UnitMask;

/// Checked-in floor for the CI perf gate, in scheduler passes per
/// second of `run()` wall. Set well below the dev-box measurement
/// (~37 k/s at the time of writing) to absorb runner variance, but far
/// above the pre-incremental baseline (~15 k/s on the same box, so
/// single-digit k/s on a slow runner): a regression that undoes the
/// incremental structures trips it with margin.
const FLOOR_PASSES_PER_S: f64 = 15_000.0;

fn builder(
    jobs: Vec<amjs_workload::Job>,
    config: &RunConfig,
) -> SimulationBuilder<impl amjs_platform::Platform + amjs_sim::Snapshot> {
    SimulationBuilder::new(harness::intrepid(), jobs)
        .policy(config.policy)
        .backfill(config.backfill)
        .easy_protected(Some(harness::EASY_PROTECTED))
        .backfill_depth(Some(harness::BACKFILL_DEPTH))
        .label(config.label.clone())
}

/// Quartiles of a sorted sample, in milliseconds.
fn quartiles_ms(sorted: &[f64]) -> (f64, f64, f64, f64, f64) {
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f).round() as usize] * 1e3;
    (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
}

fn json_quartiles(sorted: &[f64]) -> String {
    let (min, p25, p50, p75, max) = quartiles_ms(sorted);
    format!(
        "{{ \"min\": {min:.1}, \"p25\": {p25:.1}, \"p50\": {p50:.1}, \"p75\": {p75:.1}, \"max\": {max:.1} }}"
    )
}

/// ~1M-op microbench of one mask routine; returns Mops/s.
fn mops(mut op: impl FnMut(u64)) -> f64 {
    const OPS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..OPS {
        op(i);
    }
    OPS as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    let config = RunConfig::fixed(0.5, 2);
    eprintln!(
        "ablation_hotpath: {} jobs, config {}",
        jobs.len(),
        config.label
    );

    let reps_opt = if fast { 3 } else { 7 };
    let reps_ref = if fast { 1 } else { 3 };

    // Interleave optimized and reference reps so slow machine drift
    // cannot masquerade as a path difference; take best-of-N walls.
    let probe = builder(jobs.clone(), &config).run();
    let baseline_row = probe.summary.csv_row();
    let passes = probe.scheduler_passes;
    // Derived event count: one submit/start/end per completed job plus
    // one event per scheduling pass (the outcome does not expose the
    // raw engine event counter).
    let events = 3 * probe.per_job.len() as u64 + passes;

    let mut opt_walls = Vec::new();
    let mut ref_walls = Vec::new();
    for rep in 0..reps_opt {
        let t0 = Instant::now();
        let out = builder(jobs.clone(), &config).run();
        opt_walls.push(t0.elapsed().as_secs_f64());
        assert_eq!(out.summary.csv_row(), baseline_row, "optimized run drifted");
        if rep < reps_ref {
            let t0 = Instant::now();
            let out = builder(jobs.clone(), &config).reference_hotpath(true).run();
            ref_walls.push(t0.elapsed().as_secs_f64());
            assert_eq!(
                out.summary.csv_row(),
                baseline_row,
                "reference path must be byte-identical to the optimized path"
            );
        }
    }
    opt_walls.sort_by(f64::total_cmp);
    ref_walls.sort_by(f64::total_cmp);
    let opt_best = opt_walls[0];
    let ref_best = ref_walls[0];
    let opt_pps = passes as f64 / opt_best;
    let ref_pps = passes as f64 / ref_best;

    // Per-span breakdown of one profiled optimized run.
    let prof = Rc::new(RefCell::new(Profiler::new()));
    let (out, mut obs) = builder(jobs.clone(), &config)
        .run_observed(Observer::disabled().with_profiler(prof.clone()));
    obs.finish();
    assert_eq!(out.summary.csv_row(), baseline_row);
    let span_json: Vec<String> = prof
        .borrow()
        .spans()
        .iter()
        .map(|(name, s)| {
            format!(
                "    {{ \"span\": \"{name}\", \"count\": {}, \"total_ms\": {:.2} }}",
                s.count,
                s.total.as_secs_f64() * 1e3
            )
        })
        .collect();

    // Allocator microbench: the word-parallel primitives vs the naive
    // bit loops, on the Intrepid-shaped 80-unit mask.
    let units: u16 = 80;
    let mut m = UnitMask::empty();
    let word_set = mops(|i| m.set_range((i % 73) as u16, 8));
    let mut m = UnitMask::empty();
    let naive_set = mops(|i| m.set_range_naive((i % 73) as u16, 8));
    let mut m = UnitMask::empty();
    m.set_range(0, 40);
    let word_scan = mops(|i| {
        let k = 1 << (i % 4);
        std::hint::black_box(m.first_clear_aligned_block(k, units));
    });
    let naive_scan = mops(|i| {
        let k = 1 << (i % 4);
        std::hint::black_box(m.first_clear_aligned_block_naive(k, units));
    });

    let rows = vec![
        vec![
            "optimized".to_string(),
            table::num(opt_best, 3),
            table::num(opt_pps / 1e3, 1),
            table::num(events as f64 / opt_best / 1e3, 1),
        ],
        vec![
            "reference".to_string(),
            table::num(ref_best, 3),
            table::num(ref_pps / 1e3, 1),
            table::num(events as f64 / ref_best / 1e3, 1),
        ],
    ];
    print!(
        "{}",
        table::render(&["hot path", "wall(s)", "kpass/s", "kevent/s"], &rows)
    );
    eprintln!(
        "speedup: {:.2}x  (allocator: set {word_set:.0} vs {naive_set:.0} Mops/s, scan {word_scan:.1} vs {naive_scan:.1} Mops/s)",
        ref_best / opt_best
    );

    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"jobs\": {},\n  \"scheduler_passes\": {},\n  \"events\": {},\n  \"optimized\": {{\n    \"reps\": {},\n    \"passes_per_s\": {:.1},\n    \"events_per_s\": {:.1},\n    \"run_wall_ms\": {}\n  }},\n  \"reference\": {{\n    \"reps\": {},\n    \"passes_per_s\": {:.1},\n    \"events_per_s\": {:.1},\n    \"run_wall_ms\": {}\n  }},\n  \"speedup\": {:.2},\n  \"floor_passes_per_s\": {:.0},\n  \"spans\": [\n{}\n  ]\n}}\n",
        if fast { "intrepid-week" } else { "intrepid-month" },
        jobs.len(),
        passes,
        events,
        reps_opt,
        opt_pps,
        events as f64 / opt_best,
        json_quartiles(&opt_walls),
        reps_ref,
        ref_pps,
        events as f64 / ref_best,
        json_quartiles(&ref_walls),
        ref_best / opt_best,
        FLOOR_PASSES_PER_S,
        span_json.join(",\n")
    );
    let path = results::write_result("BENCH_hotpath.json", &json);
    eprintln!("wrote {}", path.display());

    // The perf gate: the month-trace trajectory must not slide back
    // toward the pre-incremental scheduler.
    if !fast {
        let floor = std::env::var("AMJS_HOTPATH_FLOOR")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(FLOOR_PASSES_PER_S);
        assert!(
            opt_pps >= floor * 0.9,
            "hot path ran at {opt_pps:.0} passes/s, below floor {floor:.0} x 0.9"
        );
        eprintln!("perf gate: {opt_pps:.0} passes/s >= {:.0} OK", floor * 0.9);
    }
}
