//! Observability experiment: what does watching the scheduler cost?
//!
//! The observability layer promises "pay for what you use": a disabled
//! `Observer` compiles down to a handful of `Option::is_some` checks,
//! and an attached sink only ever clones small value structs. This
//! experiment runs the same month-long trace under each mode —
//! baseline (`run()`), disabled observer, in-memory ring sink, JSONL
//! file sink, and span profiling — reporting wall time, events/sec,
//! overhead, and records captured. The ring-buffer path — the mode
//! meant to be left on in production runs — is budgeted in absolute
//! terms (500 ns/record, plus a 25% relative ceiling), because its
//! cost is fixed per record while the baseline keeps getting faster.
//!
//! Measured shape (see EXPERIMENTS.md): the disabled observer is
//! indistinguishable from the baseline; the ring sink costs a few
//! percent (struct clones into a preallocated ring); the JSONL sink is
//! dominated by serialization + buffered file writes; profiling costs
//! two `Instant::now()` calls per span and sits near the ring sink.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_obs [--seed N] [--fast]`

use std::cell::RefCell;
use std::fs;
use std::io::BufWriter;
use std::rc::Rc;
use std::time::Instant;

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::runner::SimulationBuilder;
use amjs_obs::{JsonlSink, Observer, Profiler, RingSink};

/// Ring capacity used for the always-on mode; generous enough that the
/// tail of a month run survives, small enough to stay cache-friendly.
const RING_CAPACITY: usize = 8 * 1024;

/// Probe returning how many records a mode captured in the last rep.
type RecordProbe = Box<dyn Fn() -> u64>;
/// Builds a fresh observer (and its probe) for one timed rep.
type ModeFactory = Box<dyn Fn() -> (Observer, RecordProbe)>;

fn builder(
    jobs: Vec<amjs_workload::Job>,
    config: &RunConfig,
) -> SimulationBuilder<impl amjs_platform::Platform + amjs_sim::Snapshot> {
    SimulationBuilder::new(harness::intrepid(), jobs)
        .policy(config.policy)
        .backfill(config.backfill)
        .easy_protected(Some(harness::EASY_PROTECTED))
        .backfill_depth(Some(harness::BACKFILL_DEPTH))
        .label(config.label.clone())
}

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    let config = RunConfig::fixed(0.5, 2);
    eprintln!("ablation_obs: {} jobs, config {}", jobs.len(), config.label);

    // Best-of-7, with reps interleaved round-robin across all modes:
    // a run is around half a second, so measuring each mode in its own
    // contiguous block would let slow machine drift (thermal, page
    // cache, a background task) masquerade as per-mode overhead.
    const REPS: usize = 7;
    let baseline = builder(jobs.clone(), &config).run();
    let baseline_row = baseline.summary.csv_row();
    let events = baseline.scheduler_passes;

    // Each mode builds a fresh Observer per rep and reports the records
    // it captured; every mode must reproduce the baseline outcome.
    let trace_path =
        std::env::temp_dir().join(format!("amjs-ablation-obs-{}.jsonl", std::process::id()));
    let modes: Vec<(&str, ModeFactory)> = vec![
        (
            "observer disabled",
            Box::new(|| (Observer::disabled(), Box::new(|| 0u64) as RecordProbe)),
        ),
        (
            "ring sink (8k)",
            Box::new(|| {
                let sink = Rc::new(RefCell::new(RingSink::new(RING_CAPACITY)));
                let probe = sink.clone();
                (
                    Observer::disabled().with_sink(sink),
                    Box::new(move || probe.borrow().total_recorded()) as RecordProbe,
                )
            }),
        ),
        (
            "jsonl file sink",
            Box::new({
                let trace_path = trace_path.clone();
                move || {
                    let file = fs::File::create(&trace_path).unwrap();
                    let sink = Rc::new(RefCell::new(JsonlSink::new(BufWriter::new(file))));
                    let probe = sink.clone();
                    (
                        Observer::disabled().with_sink(sink),
                        Box::new(move || probe.borrow().written()) as RecordProbe,
                    )
                }
            }),
        ),
        (
            "span profiling",
            Box::new(|| {
                let prof = Rc::new(RefCell::new(Profiler::new()));
                let probe = prof.clone();
                (
                    Observer::disabled().with_profiler(prof),
                    Box::new(move || {
                        probe
                            .borrow()
                            .spans()
                            .values()
                            .map(|s| s.count)
                            .sum::<u64>()
                    }) as RecordProbe,
                )
            }),
        ),
    ];

    let mut base_secs = f64::INFINITY;
    let mut mode_secs = vec![f64::INFINITY; modes.len()];
    let mut mode_records = vec![0u64; modes.len()];
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = builder(jobs.clone(), &config).run();
        base_secs = base_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(out.summary.csv_row(), baseline_row);

        for (i, (name, make)) in modes.iter().enumerate() {
            let (obs, count) = make();
            let t0 = Instant::now();
            let (out, mut obs) = builder(jobs.clone(), &config).run_observed(obs);
            mode_secs[i] = mode_secs[i].min(t0.elapsed().as_secs_f64());
            obs.finish();
            mode_records[i] = count();
            assert_eq!(
                out.summary.csv_row(),
                baseline_row,
                "{name}: observability must not change the outcome"
            );
            // Unlink the JSONL file immediately: dropping its dirty
            // pages keeps the kernel's async writeback from taxing
            // whichever mode happens to be timed next.
            let _ = fs::remove_file(&trace_path);
        }
    }

    let mut rows = vec![vec![
        "baseline (run)".to_string(),
        table::num(base_secs, 3),
        table::num(events as f64 / base_secs / 1_000.0, 1),
        "-".to_string(),
        "-".to_string(),
    ]];
    let mut ring_overhead = None;
    for (i, (name, _)) in modes.iter().enumerate() {
        let secs = mode_secs[i];
        let overhead = (secs / base_secs - 1.0) * 100.0;
        if *name == "ring sink (8k)" {
            ring_overhead = Some(overhead);
        }
        rows.push(vec![
            name.to_string(),
            table::num(secs, 3),
            table::num(events as f64 / secs / 1_000.0, 1),
            table::num(overhead, 1),
            if mode_records[i] == 0 {
                "-".to_string()
            } else {
                mode_records[i].to_string()
            },
        ]);
    }

    let header = [
        "observability",
        "wall(s)",
        "kpass/s",
        "overhead(%)",
        "records",
    ];
    let rendered = table::render(&header, &rows);
    print!("{rendered}");
    let path = results::write_result("ablation_obs.txt", &rendered);
    eprintln!("wrote {}", path.display());

    // The always-on mode must stay cheap. Allow slack in --fast smoke
    // runs, where sub-100ms walls make percentages pure noise. The
    // budget is 25%, not the original 5%: the ring's cost is a fixed
    // amount of work per event, and the incremental-scheduler work
    // (dirty-score cache + overlay timelines) more than halved the
    // baseline wall, so the same absolute cost now reads as a larger
    // fraction. Guard the absolute cost too, so a genuinely slower
    // sink cannot hide behind a faster scheduler.
    let ring = ring_overhead.expect("ring mode ran");
    if !fast {
        assert!(
            ring < 25.0,
            "ring-buffer tracing overhead {ring:.1}% breaches the 25% budget"
        );
        let ring_idx = modes
            .iter()
            .position(|(n, _)| *n == "ring sink (8k)")
            .unwrap();
        let ns_per_record =
            (mode_secs[ring_idx] - base_secs).max(0.0) * 1e9 / mode_records[ring_idx] as f64;
        assert!(
            ns_per_record < 500.0,
            "ring-buffer tracing costs {ns_per_record:.0} ns/record (budget 500 ns)"
        );
        eprintln!("ring-buffer overhead: {ring:.1}% ({ns_per_record:.0} ns/record)");
    } else {
        eprintln!("ring-buffer overhead: {ring:.1}% (budget 25%)");
    }
}
