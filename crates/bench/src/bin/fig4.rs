//! Figure 4 — adaptively tuning the balance factor.
//!
//! Plots queue depth (aggregate waiting minutes of queued jobs, sampled
//! every 30 minutes) over the first 200 hours for four runs, all W=1:
//!
//! * static BF = 1 (FCFS) — deepest queue, worst at the hour-~100 burst;
//! * static BF = 0.75;
//! * static BF = 0.5;
//! * **adaptive**: BF tuned 1 ↔ 0.5 on the queue-depth threshold (the
//!   whole-month average of the base run, per the paper).
//!
//! Output: 4(a) linear-scale ASCII chart, 4(b) log-scale chart (the
//! paper's device for seeing the shallow-queue regime where FCFS is
//! fine), the peak-depth ratios the paper quotes (BF=0.75 peak ≈ 1/4 of
//! FCFS, BF=0.5 ≈ 1/8), and a CSV of all series.
//!
//! The three post-threshold runs go through the fault-tolerant fleet
//! engine (`amjs-fleet`); the base run stays sequential because the
//! adaptive threshold is computed from it. `--jobs 1` reproduces the
//! old sequential output byte-for-byte.
//!
//! Usage: `cargo run -p amjs-bench --release --bin fig4
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{chart, results};
use amjs_core::{AdaptiveKind, MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_sim::SimTime;

fn main() {
    let (seed, fast, workers) = harness::parse_args_with_jobs(harness::default_workers());
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("fig4: {} jobs, {workers} workers", jobs.len());

    // Threshold from the base run's whole-trace average (paper §IV-C.1).
    let base = harness::run_one(harness::intrepid(), jobs.clone(), &RunConfig::fixed(1.0, 1));
    let threshold = base.queue_depth.mean_value().unwrap_or(1000.0);

    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };
    let workload = WorkloadSource::Preset {
        name: preset,
        seed,
        load_factor: 1.0,
    };
    let mut adaptive_spec = RunSpec::new(
        "adaptive",
        MachineSpec::intrepid(),
        workload.clone(),
        PolicyParams::fcfs(),
    )
    .labeled("adaptive");
    adaptive_spec.adaptive = AdaptiveKind::Bf { threshold };
    let specs = vec![
        RunSpec::new(
            "bf0.75-w1",
            MachineSpec::intrepid(),
            workload.clone(),
            PolicyParams::new(0.75, 1),
        ),
        RunSpec::new(
            "bf0.5-w1",
            MachineSpec::intrepid(),
            workload,
            PolicyParams::new(0.5, 1),
        ),
        adaptive_spec,
    ];
    let rest = harness::run_fleet_outcomes(&specs, workers);
    let (bf075, bf05, adaptive) = (&rest[0], &rest[1], &rest[2]);

    let until = SimTime::from_hours(200);
    let s_base = base.queue_depth.truncated(until);
    let s_075 = bf075.queue_depth.truncated(until);
    let s_05 = bf05.queue_depth.truncated(until);
    let s_ad = adaptive.queue_depth.truncated(until);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 4 — adaptive BF tuning; queue depth over the first 200 h\n\
         ({} jobs, seed {seed}, threshold {threshold:.0} min)\n\n",
        jobs.len()
    ));
    out.push_str("(a) queue depth, linear scale\n");
    out.push_str(&chart::ascii_chart(
        &[
            ("BF=1", &s_base),
            ("BF=0.75", &s_075),
            ("BF=0.5", &s_05),
            ("adaptive", &s_ad),
        ],
        100,
        20,
        false,
    ));
    out.push_str("\n(b) queue depth, log scale\n");
    out.push_str(&chart::ascii_chart(
        &[
            ("BF=1", &s_base),
            ("BF=0.75", &s_075),
            ("BF=0.5", &s_05),
            ("adaptive", &s_ad),
        ],
        100,
        20,
        true,
    ));

    let peak = |s: &amjs_metrics::TimeSeries| s.max_value().unwrap_or(0.0);
    out.push_str(&format!(
        "\npeak queue depth (first 200 h, minutes):\n  BF=1      {:>10.0}\n  BF=0.75   {:>10.0}  ({:.2}x of FCFS; paper ~1/4)\n  BF=0.5    {:>10.0}  ({:.2}x of FCFS; paper <1/8)\n  adaptive  {:>10.0}  ({:.2}x of FCFS; paper: best overall)\n",
        peak(&s_base),
        peak(&s_075),
        peak(&s_075) / peak(&s_base),
        peak(&s_05),
        peak(&s_05) / peak(&s_base),
        peak(&s_ad),
        peak(&s_ad) / peak(&s_base),
    ));
    out.push_str(&format!(
        "mean queue depth over full trace: BF=1 {:.0}, BF=0.75 {:.0}, BF=0.5 {:.0}, adaptive {:.0}\n",
        base.queue_depth.mean_value().unwrap(),
        bf075.queue_depth.mean_value().unwrap(),
        bf05.queue_depth.mean_value().unwrap(),
        adaptive.queue_depth.mean_value().unwrap(),
    ));

    print!("{out}");
    results::write_result("fig4.txt", &out);

    let named = [
        ("bf_1", &base.queue_depth),
        ("bf_075", &bf075.queue_depth),
        ("bf_05", &bf05.queue_depth),
        ("adaptive", &adaptive.queue_depth),
    ];
    // Series may differ in length (different makespans); pad by
    // truncating to the shortest for the shared-grid CSV.
    let min_len = named.iter().map(|(_, s)| s.len()).min().unwrap();
    let cut: Vec<amjs_metrics::TimeSeries> = named
        .iter()
        .map(|(name, s)| {
            let mut t = amjs_metrics::TimeSeries::new(*name);
            for &(st, v) in s.points().iter().take(min_len) {
                t.push(st, v);
            }
            t
        })
        .collect();
    let refs: Vec<&amjs_metrics::TimeSeries> = cut.iter().collect();
    let csv = amjs_metrics::series::to_csv(&refs);
    let p = results::write_result("fig4.csv", &csv);
    eprintln!("fig4: wrote results/fig4.txt and {}", p.display());
}
