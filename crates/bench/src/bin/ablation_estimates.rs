//! Extension experiment: walltime-estimate adjustment (the authors'
//! IPDPS 2010 companion work, ref. 20 of the paper).
//!
//! Users over-request walltime (~0.6 mean accuracy in the calibrated
//! workload), making every plan pessimistic. This experiment compares
//! planning with raw requests against a per-user online accuracy model
//! (EMA of runtime/request), across the base and balanced policies.
//! Expected shape, per the companion paper: tighter estimates improve
//! backfilling and waits — unless they under-shoot often enough that
//! broken reservations cost more than the tighter packing gains, which
//! is the classic risk the literature flags (and worth measuring, not
//! assuming).
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_estimates [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::estimates::EstimatePolicy;
use amjs_core::runner::SimulationBuilder;

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_estimates: {} jobs", jobs.len());

    let configs = [RunConfig::fixed(1.0, 1), RunConfig::fixed(0.5, 4)];
    let policies = [
        ("raw requests", EstimatePolicy::Requested),
        ("user-adaptive", EstimatePolicy::user_adaptive()),
    ];

    let mut variants = Vec::new();
    for config in &configs {
        for (tag, est) in &policies {
            variants.push((format!("{} / {tag}", config.label), config.clone(), *est));
        }
    }

    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(label, config, est)| {
                let jobs = jobs.clone();
                let label = label.clone();
                s.spawn(move || {
                    SimulationBuilder::new(harness::intrepid(), jobs)
                        .policy(config.policy)
                        .backfill(config.backfill)
                        .easy_protected(Some(harness::EASY_PROTECTED))
                        .backfill_depth(Some(harness::BACKFILL_DEPTH))
                        .estimate_policy(*est)
                        .label(label)
                        .run()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let header = [
        "config / estimates",
        "wait(min)",
        "slowdown",
        "unfair#",
        "LoC(%)",
        "backfills",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                table::num(o.summary.mean_bounded_slowdown, 1),
                o.summary.unfair_jobs.to_string(),
                table::num(o.summary.loc_percent, 1),
                o.backfilled_starts.to_string(),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Extension — walltime-estimate adjustment (ref. 20) ({} jobs, seed {seed})\n\n",
        jobs.len()
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nA rise in backfills with user-adaptive estimates means the tighter\n\
         plans opened holes that raw requests hid; a simultaneous rise in wait\n\
         means under-estimates broke reservations more than the holes paid.\n",
    );
    print!("{out}");
    results::write_result("ablation_estimates.txt", &out);
}
