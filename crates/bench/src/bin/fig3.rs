//! Figure 3 — the effect of balance factor and window size.
//!
//! Sweeps BF ∈ {1, 0.75, 0.5, 0.25, 0} × W ∈ {1..5} (25 simulations, run
//! in parallel) over the month trace and reports:
//!
//! * **(a)** average waiting time vs. BF, one series per W — the paper
//!   finds a steep drop from BF=1 to BF=0.5 and little further change;
//! * **(b)** unfair job count vs. BF, one series per W — unfairness
//!   grows toward SJF and with larger windows;
//! * **(c)** loss of capacity vs. W, one series per BF — LoC falls with
//!   W while BF ≥ 0.5 and the effect disappears toward SJF.
//!
//! The 25-point grid runs on the fault-tolerant fleet engine
//! (`amjs-fleet`): supervised workers, panics retried, digests in grid
//! order. `--jobs 1` reproduces the old sequential output
//! byte-for-byte.
//!
//! Usage: `cargo run -p amjs-bench --release --bin fig3
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::{MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};

const BFS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.0];
const WINDOWS: [usize; 5] = [1, 2, 3, 4, 5];

fn main() {
    let (seed, fast, workers) = harness::parse_args_with_jobs(harness::default_workers());
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!(
        "fig3: {} jobs, {} configurations, {workers} workers",
        jobs.len(),
        BFS.len() * WINDOWS.len()
    );

    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };
    let specs: Vec<RunSpec> = BFS
        .iter()
        .flat_map(|&bf| {
            WINDOWS.iter().map(move |&w| {
                RunSpec::new(
                    format!("bf{bf}-w{w}"),
                    MachineSpec::intrepid(),
                    WorkloadSource::Preset {
                        name: preset,
                        seed,
                        load_factor: 1.0,
                    },
                    PolicyParams::new(bf, w),
                )
            })
        })
        .collect();
    let (digests, _report) = harness::run_fleet_sweep(&specs, workers);
    let get = |bf_i: usize, w_i: usize| &digests[bf_i * WINDOWS.len() + w_i].summary;

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3 — metric-aware scheduling sweep ({} jobs, seed {seed})\n\n",
        jobs.len()
    ));

    // (a) average waiting time: rows = BF, columns = W.
    out.push_str("(a) average waiting time (min) — rows BF, columns W\n");
    let header: Vec<String> = std::iter::once("BF".to_string())
        .chain(WINDOWS.iter().map(|w| format!("W={w}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = BFS
        .iter()
        .enumerate()
        .map(|(bi, bf)| {
            std::iter::once(format!("{bf}"))
                .chain((0..WINDOWS.len()).map(|wi| table::num(get(bi, wi).avg_wait_mins, 1)))
                .collect()
        })
        .collect();
    out.push_str(&table::render(&header_refs, &rows));

    // (b) unfair jobs.
    out.push_str("\n(b) unfair jobs (count) — rows BF, columns W\n");
    let rows: Vec<Vec<String>> = BFS
        .iter()
        .enumerate()
        .map(|(bi, bf)| {
            std::iter::once(format!("{bf}"))
                .chain((0..WINDOWS.len()).map(|wi| get(bi, wi).unfair_jobs.to_string()))
                .collect()
        })
        .collect();
    out.push_str(&table::render(&header_refs, &rows));

    // (c) loss of capacity: rows = W (the paper swaps the axes here),
    // columns = BF.
    out.push_str("\n(c) loss of capacity (%) — rows W, columns BF\n");
    let header_c: Vec<String> = std::iter::once("W".to_string())
        .chain(BFS.iter().map(|bf| format!("BF={bf}")))
        .collect();
    let header_c_refs: Vec<&str> = header_c.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = WINDOWS
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            std::iter::once(format!("{w}"))
                .chain((0..BFS.len()).map(|bi| table::num(get(bi, wi).loc_percent, 1)))
                .collect()
        })
        .collect();
    out.push_str(&table::render(&header_c_refs, &rows));

    // Shape checks mirroring the paper's findings.
    let drop_1_to_05 = get(0, 0).avg_wait_mins - get(2, 0).avg_wait_mins;
    let drop_05_to_0 = get(2, 0).avg_wait_mins - get(4, 0).avg_wait_mins;
    out.push_str(&format!(
        "\nwait drop BF 1→0.5 (W=1): {:.1} min; BF 0.5→0: {:.1} min (paper: steep, then flat)\n",
        drop_1_to_05, drop_05_to_0
    ));
    out.push_str(&format!(
        "unfair at BF=1/W=1: {} vs BF=0/W=5: {} (paper: grows toward SJF and with W)\n",
        get(0, 0).unfair_jobs,
        get(4, 4).unfair_jobs
    ));

    print!("{out}");
    results::write_result("fig3.txt", &out);

    // Full CSV for replotting.
    let mut csv = String::from("bf,window,avg_wait_mins,unfair_jobs,loc_percent,utilization\n");
    for (bi, bf) in BFS.iter().enumerate() {
        for (wi, w) in WINDOWS.iter().enumerate() {
            let s = get(bi, wi);
            csv.push_str(&format!(
                "{bf},{w},{:.3},{},{:.4},{:.5}\n",
                s.avg_wait_mins, s.unfair_jobs, s.loc_percent, s.avg_utilization
            ));
        }
    }
    let p = results::write_result("fig3.csv", &csv);
    eprintln!("fig3: wrote results/fig3.txt and {}", p.display());
}
