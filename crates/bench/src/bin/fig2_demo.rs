//! Figure 2, live — the paper's motivating example for window-based
//! group allocation.
//!
//! "An example showing the limitation of scheduling and allocating jobs
//! one by one. Job 0 is running, Jobs 1, 2, and 3 are waiting. (a)
//! schedule and allocate job one by one in priority order; (b) schedule
//! and allocate in a group as a whole. Apparently (b) achieves better
//! system utilization."
//!
//! This binary reconstructs that situation concretely, runs both
//! schedulers (`W=1` vs `W=3`), and prints the resulting schedules as
//! Gantt charts so the effect is visible rather than asserted.
//!
//! Usage: `cargo run -p amjs-bench --release --bin fig2_demo`

use amjs_bench::chart::gantt;
use amjs_bench::results;
use amjs_core::scheduler::{BackfillMode, QueuedJob, Scheduler};
use amjs_core::PolicyParams;
use amjs_platform::{FlatCluster, Platform};
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::JobId;

fn main() {
    // A 10-node machine. Job 0 runs on 5 nodes until t = 1 h.
    // Waiting (priority order): job 1 needs all 10 nodes for 2 h;
    // job 2 needs 5 nodes for 50 min; job 3 needs 5 nodes for 55 min.
    //
    // One-by-one: job 1 reserves the whole machine at t=1h; job 2
    // backfills (it ends before the reservation) but job 3 cannot (it
    // would run 5 minutes into it), so job 3 is pushed all the way
    // behind job 1 — it finishes last, near 3.9 h. Grouped (W=3): the
    // permutation search slots job 3 in *before* job 1 (job 1 slides by
    // ~50 minutes, the window's least-makespan choice), total makespan
    // shrinks, and the pocket of idle nodes in hour 1–3 disappears.
    let now = SimTime::ZERO;
    let mut machine = FlatCluster::new(10);
    let running = machine.allocate(5).expect("job 0");
    let release = |_id| SimTime::from_mins(60);
    let queue = vec![
        QueuedJob {
            id: JobId(1),
            submit: SimTime::from_mins(-30),
            nodes: 10,
            walltime: SimDuration::from_mins(120),
        },
        QueuedJob {
            id: JobId(2),
            submit: SimTime::from_mins(-20),
            nodes: 5,
            walltime: SimDuration::from_mins(50),
        },
        QueuedJob {
            id: JobId(3),
            submit: SimTime::from_mins(-10),
            nodes: 5,
            walltime: SimDuration::from_mins(55),
        },
    ];

    let mut out = String::new();
    out.push_str("Figure 2 demo — one-by-one vs grouped allocation\n\n");
    out.push_str("machine: 10 nodes; job#0 runs on 5 nodes until 1.0h\n");
    out.push_str("queue (priority order): job#1 10n/2h, job#2 5n/50m, job#3 5n/55m\n");

    for (panel, window) in [("(a) one-by-one, W=1", 1usize), ("(b) grouped, W=3", 3)] {
        let scheduler = Scheduler::new(PolicyParams::new(1.0, window), BackfillMode::Easy);
        let plan = machine.plan(now, &release);
        let decision = scheduler.schedule_pass(now, &queue, &plan);

        // Assemble the tentative schedule: running job + starts +
        // reservations.
        let mut rows = vec![("job#0 (running)".to_string(), now, SimTime::from_mins(60))];
        for s in &decision.starts {
            let j = queue.iter().find(|j| j.id == s.id).unwrap();
            rows.push((format!("{} start", j.id), now, now + j.walltime));
        }
        for &(id, at) in &decision.reservations {
            let j = queue.iter().find(|j| j.id == id).unwrap();
            rows.push((format!("{} resv", j.id), at, at + j.walltime));
        }
        out.push_str(&format!(
            "\n{panel}: {} started now, {} reserved\n",
            decision.starts.len(),
            decision.reservations.len()
        ));
        out.push_str(&gantt(&rows, 72));
    }

    machine.release(running);
    print!("{out}");
    results::write_result("fig2_demo.txt", &out);
}
