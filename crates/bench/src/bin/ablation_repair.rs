//! Extension experiment: the node lifecycle — repair time × failure
//! rate. `ablation_failures` asks which *policies* lose the least work
//! to failures; this experiment asks what the *machine's* serviceability
//! parameters cost, holding the policy fixed at the paper's balanced
//! configuration (BF=0.5/W=4, EASY).
//!
//! Failures follow a Poisson process over the machine; each failure
//! takes its quantum out of service until a repair completes, and kills
//! the resident job, which retries under an exponential-backoff policy
//! with an attempt cap. Sweeping mean repair time against node MTBF
//! separates two regimes: when repairs are fast the cost of a failure is
//! the lost in-flight work (MTBF-bound); when repairs are slow the cost
//! shifts to standing capacity loss — availability sags and waiting
//! times inflate even though no extra work is destroyed.
//!
//! The grid runs on the fault-tolerant fleet engine (`amjs-fleet`):
//! supervised workers, panics retried, digests in spec order. `--jobs 1`
//! reproduces the old sequential output byte-for-byte.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_repair
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::failures::{FailureSpec, RepairSpec, RetryPolicy};
use amjs_core::{MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_sim::SimDuration;

fn main() {
    let (seed, fast, workers) = harness::parse_args_with_jobs(harness::default_workers());

    // Node MTBFs: the production-flavored 50 years, and a degraded
    // machine at 10 years (~1 machine failure / 2.1 h at Intrepid
    // scale). Repair means: quick service action vs. full-day part
    // replacement.
    let mtbf_years: [i64; 2] = [50, 10];
    let repair_hours: [i64; 3] = [1, 4, 24];
    let retry = RetryPolicy {
        max_attempts: Some(10),
        backoff_base: SimDuration::from_mins(5),
    };
    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };

    let specs: Vec<RunSpec> = mtbf_years
        .iter()
        .flat_map(|&years| {
            repair_hours.iter().map(move |&hours| {
                let mut s = RunSpec::new(
                    format!("mtbf{years}y-fix{hours}h"),
                    MachineSpec::intrepid(),
                    WorkloadSource::Preset {
                        name: preset,
                        seed,
                        load_factor: 1.0,
                    },
                    PolicyParams::new(0.5, 4),
                )
                .labeled(format!("mtbf{years}y/fix{hours}h"));
                s.failures = Some(FailureSpec {
                    node_mtbf: SimDuration::from_hours(years * 365 * 24),
                    repair: RepairSpec::LogNormal {
                        mean: SimDuration::from_hours(hours),
                        sigma: 0.6,
                    },
                    seed: seed ^ 0x4E9A,
                });
                s.retry = retry;
                s
            })
        })
        .collect();
    let n_jobs = specs[0].jobs().len();
    eprintln!(
        "ablation_repair: {} runs of {n_jobs} jobs, {workers} workers",
        specs.len()
    );
    let (digests, report) = harness::run_fleet_sweep(&specs, workers);
    harness::write_sweep_bench(&report);

    let header = [
        "config",
        "wait(min)",
        "interrupts",
        "aband#",
        "down node-h",
        "min avail",
        "util",
    ];
    let rows: Vec<Vec<String>> = digests
        .iter()
        .map(|d| {
            vec![
                d.summary.label.clone(),
                table::num(d.summary.avg_wait_mins, 1),
                d.interrupted_jobs.to_string(),
                d.summary.abandoned_jobs.to_string(),
                table::num(d.summary.node_downtime_hours, 0),
                table::num(d.min_availability, 4),
                table::num(d.summary.avg_utilization, 3),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Extension — repair time \u{00d7} failure rate (node lifecycle)\n\
         ({n_jobs} jobs, seed {seed}, BF=0.5/W=4, log-normal repairs \u{03c3}=0.6,\n\
          retry: \u{2264}10 attempts, 5-min exponential backoff)\n\n",
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nReading: at a fixed failure rate, longer repairs convert failure cost\n\
         from lost in-flight work into standing capacity loss — down node-hours\n\
         scale with the repair mean while interruption counts barely move.\n\
         Utilization here is measured against *available* capacity, so a sagging\n\
         'min avail' with steady util means the scheduler is keeping what is\n\
         left of the machine busy. The blow-up in the worst cell is starvation,\n\
         not livelock: a full-machine job can only start when *every* midplane\n\
         is simultaneously up, which at high failure rates and day-long repairs\n\
         almost never happens — the motivation for fault-aware scheduling\n\
         (the authors' ref. 21) and for draining policies that spare big jobs.\n",
    );
    print!("{out}");
    results::write_result("ablation_repair.txt", &out);
}
