//! Extension experiment: the node lifecycle — repair time × failure
//! rate. `ablation_failures` asks which *policies* lose the least work
//! to failures; this experiment asks what the *machine's* serviceability
//! parameters cost, holding the policy fixed at the paper's balanced
//! configuration (BF=0.5/W=4, EASY).
//!
//! Failures follow a Poisson process over the machine; each failure
//! takes its quantum out of service until a repair completes, and kills
//! the resident job, which retries under an exponential-backoff policy
//! with an attempt cap. Sweeping mean repair time against node MTBF
//! separates two regimes: when repairs are fast the cost of a failure is
//! the lost in-flight work (MTBF-bound); when repairs are slow the cost
//! shifts to standing capacity loss — availability sags and waiting
//! times inflate even though no extra work is destroyed.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_repair [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::failures::{FailureSpec, RepairSpec, RetryPolicy};
use amjs_core::runner::SimulationBuilder;
use amjs_sim::SimDuration;

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_repair: {} jobs", jobs.len());

    // Node MTBFs: the production-flavored 50 years, and a degraded
    // machine at 10 years (~1 machine failure / 2.1 h at Intrepid
    // scale). Repair means: quick service action vs. full-day part
    // replacement.
    let mtbf_years: [i64; 2] = [50, 10];
    let repair_hours: [i64; 3] = [1, 4, 24];
    let retry = RetryPolicy {
        max_attempts: Some(10),
        backoff_base: SimDuration::from_mins(5),
    };
    let config = RunConfig::fixed(0.5, 4);

    let variants: Vec<(FailureSpec, String)> = mtbf_years
        .iter()
        .flat_map(|&years| {
            repair_hours.iter().map(move |&hours| {
                let spec = FailureSpec {
                    node_mtbf: SimDuration::from_hours(years * 365 * 24),
                    repair: RepairSpec::LogNormal {
                        mean: SimDuration::from_hours(hours),
                        sigma: 0.6,
                    },
                    seed: seed ^ 0x4E9A,
                };
                (spec, format!("mtbf{years}y/fix{hours}h"))
            })
        })
        .collect();

    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(spec, label)| {
                let jobs = jobs.clone();
                let label = label.clone();
                let spec = *spec;
                s.spawn(move || {
                    SimulationBuilder::new(harness::intrepid(), jobs)
                        .policy(config.policy)
                        .backfill(config.backfill)
                        .easy_protected(Some(harness::EASY_PROTECTED))
                        .backfill_depth(Some(harness::BACKFILL_DEPTH))
                        .failures(Some(spec))
                        .retry_policy(retry)
                        .label(label)
                        .run()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let header = [
        "config",
        "wait(min)",
        "interrupts",
        "aband#",
        "down node-h",
        "min avail",
        "util",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let min_avail = o
                .availability
                .points()
                .iter()
                .map(|&(_, v)| v)
                .fold(1.0f64, f64::min);
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.interrupted_jobs.to_string(),
                o.summary.abandoned_jobs.to_string(),
                table::num(o.summary.node_downtime_hours, 0),
                table::num(min_avail, 4),
                table::num(o.summary.avg_utilization, 3),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Extension — repair time \u{00d7} failure rate (node lifecycle)\n\
         ({} jobs, seed {seed}, BF=0.5/W=4, log-normal repairs \u{03c3}=0.6,\n\
          retry: \u{2264}10 attempts, 5-min exponential backoff)\n\n",
        jobs.len(),
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nReading: at a fixed failure rate, longer repairs convert failure cost\n\
         from lost in-flight work into standing capacity loss — down node-hours\n\
         scale with the repair mean while interruption counts barely move.\n\
         Utilization here is measured against *available* capacity, so a sagging\n\
         'min avail' with steady util means the scheduler is keeping what is\n\
         left of the machine busy. The blow-up in the worst cell is starvation,\n\
         not livelock: a full-machine job can only start when *every* midplane\n\
         is simultaneously up, which at high failure rates and day-long repairs\n\
         almost never happens — the motivation for fault-aware scheduling\n\
         (the authors' ref. 21) and for draining policies that spare big jobs.\n",
    );
    print!("{out}");
    results::write_result("ablation_repair.txt", &out);
}
