//! Extension experiment: correlated failure domains — cascade
//! probability × scheduling policy.
//!
//! `ablation_failures` injects independent node failures;
//! `ablation_repair` sweeps the machine's serviceability. This
//! experiment turns on the *correlation* layer: each midplane fault
//! escalates into its rack, power domain, or the whole machine with
//! probability `cascade-prob` per level, and arrivals cluster under a
//! sub-exponential Weibull gap (shape 0.7, matching production failure
//! logs). The question: does adaptive metric-aware tuning still help
//! when capacity collapses in correlated chunks rather than leaking one
//! midplane at a time?
//!
//! Every run executes under the runtime invariant oracle, so a month of
//! cascading faults doubles as a soak test of the allocator and
//! scheduler invariants.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_cascade [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::failures::{BurstModel, CorrelationSpec, DomainSpec, FailureSpec, RetryPolicy};
use amjs_core::runner::SimulationBuilder;
use amjs_metrics::FaultDomain;
use amjs_sim::SimDuration;

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_cascade: {} jobs", jobs.len());

    // Degraded machine (10-year node MTBF → one base fault per ~2.1 h at
    // Intrepid scale) so a month exercises the cascade machinery; the
    // 50-year production rate produces too few faults to compare
    // escalation levels.
    let spec = FailureSpec {
        node_mtbf: SimDuration::from_hours(10 * 365 * 24),
        repair: amjs_core::failures::RepairSpec::LogNormal {
            mean: SimDuration::from_hours(2),
            sigma: 0.6,
        },
        seed: seed ^ 0xCA5C,
    };
    let retry = RetryPolicy {
        max_attempts: Some(10),
        backoff_base: SimDuration::from_mins(5),
    };
    let cascade_probs = [0.0, 0.1, 0.3, 0.5];
    let configs = [RunConfig::fixed(0.5, 4), RunConfig::two_d_adaptive(1000.0)];

    let variants: Vec<(f64, RunConfig, String)> = cascade_probs
        .iter()
        .flat_map(|&p| {
            configs
                .iter()
                .map(move |c| (p, c.clone(), format!("p={p}/{}", c.label)))
        })
        .collect();

    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(p, config, label)| {
                let jobs = jobs.clone();
                let label = label.clone();
                let corr = CorrelationSpec {
                    cascade_prob: *p,
                    domains: DomainSpec::intrepid(),
                    burst: BurstModel::Weibull { shape: 0.7 },
                };
                s.spawn(move || {
                    SimulationBuilder::new(harness::intrepid(), jobs)
                        .policy(config.policy)
                        .backfill(config.backfill)
                        .adaptive(config.adaptive.clone())
                        .easy_protected(Some(harness::EASY_PROTECTED))
                        .backfill_depth(Some(harness::BACKFILL_DEPTH))
                        .failures(Some(spec))
                        .correlated_failures(Some(corr))
                        .retry_policy(retry)
                        .oracle(true)
                        .label(label)
                        .run()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let header = [
        "config",
        "wait(min)",
        "interrupts",
        "aband#",
        "worst fault",
        "down node-h",
        "min avail",
        "util",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let min_avail = o
                .availability
                .points()
                .iter()
                .map(|&(_, v)| v)
                .fold(1.0f64, f64::min);
            let worst = FaultDomain::ALL
                .iter()
                .rev()
                .find(|&&l| o.domain_downtime.level(l).faults > 0)
                .map(|l| l.label().to_string())
                .unwrap_or_else(|| "-".to_string());
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.interrupted_jobs.to_string(),
                o.summary.abandoned_jobs.to_string(),
                worst,
                table::num(o.summary.node_downtime_hours, 0),
                table::num(min_avail, 4),
                table::num(o.summary.avg_utilization, 3),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Extension — cascade probability \u{00d7} adaptive scheme (correlated failures)\n\
         ({} jobs, seed {seed}, 10y node MTBF, log-normal 2h repairs \u{03c3}=0.6,\n\
          Weibull-0.7 bursts, Intrepid domains 512,2,8, oracle on,\n\
          retry: \u{2264}10 attempts, 5-min exponential backoff)\n\n",
        jobs.len(),
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nReading: escalation converts many small capacity leaks into a few\n\
         large collapses — down node-hours grow with cascade probability while\n\
         interruption counts stay in the same band, because one rack- or\n\
         power-domain fault kills at most a handful of resident jobs but takes\n\
         out 2-16 midplanes for the whole repair window. Adaptive 2D tuning\n\
         keeps its waiting-time edge at low cascade levels; under heavy\n\
         cascades both policies converge because the binding constraint is\n\
         surviving capacity, not queue ordering. Every cell ran with the\n\
         runtime invariant oracle checking allocator consistency, queue/run\n\
         partitioning, and EASY protection after every event.\n",
    );
    print!("{out}");
    results::write_result("ablation_cascade.txt", &out);
}
