//! Extension experiment: correlated failure domains — cascade
//! probability × scheduling policy.
//!
//! `ablation_failures` injects independent node failures;
//! `ablation_repair` sweeps the machine's serviceability. This
//! experiment turns on the *correlation* layer: each midplane fault
//! escalates into its rack, power domain, or the whole machine with
//! probability `cascade-prob` per level, and arrivals cluster under a
//! sub-exponential Weibull gap (shape 0.7, matching production failure
//! logs). The question: does adaptive metric-aware tuning still help
//! when capacity collapses in correlated chunks rather than leaking one
//! midplane at a time?
//!
//! Every run executes under the runtime invariant oracle, so a month of
//! cascading faults doubles as a soak test of the allocator and
//! scheduler invariants. The grid runs on the fault-tolerant fleet
//! engine (`amjs-fleet`); `--jobs 1` keeps the old sequential order.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_cascade
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::failures::{BurstModel, CorrelationSpec, DomainSpec, FailureSpec, RetryPolicy};
use amjs_core::{AdaptiveKind, MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_sim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = harness::DEFAULT_SEED;
    let mut fast = false;
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--jobs" => {
                jobs = args[i + 1].parse().expect("--jobs N");
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            other => panic!("unknown argument {other:?} (supported: --seed N, --fast, --jobs N)"),
        }
    }

    // Degraded machine (10-year node MTBF → one base fault per ~2.1 h at
    // Intrepid scale) so a month exercises the cascade machinery; the
    // 50-year production rate produces too few faults to compare
    // escalation levels.
    let failures = FailureSpec {
        node_mtbf: SimDuration::from_hours(10 * 365 * 24),
        repair: amjs_core::failures::RepairSpec::LogNormal {
            mean: SimDuration::from_hours(2),
            sigma: 0.6,
        },
        seed: seed ^ 0xCA5C,
    };
    let retry = RetryPolicy {
        max_attempts: Some(10),
        backoff_base: SimDuration::from_mins(5),
    };
    let cascade_probs = [0.0, 0.1, 0.3, 0.5];
    let configs: [(&str, &str, PolicyParams, AdaptiveKind); 2] = [
        (
            "bf0.5-w4",
            "BF=0.5/W=4",
            PolicyParams::new(0.5, 4),
            AdaptiveKind::None,
        ),
        (
            "2d",
            "2D Adapt.",
            PolicyParams::fcfs(),
            AdaptiveKind::TwoD { threshold: 1000.0 },
        ),
    ];
    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };

    let specs: Vec<RunSpec> = cascade_probs
        .iter()
        .flat_map(|&p| {
            configs.iter().map(move |(stem, label, policy, adaptive)| {
                let mut s = RunSpec::new(
                    format!("p{p}-{stem}"),
                    MachineSpec::intrepid(),
                    WorkloadSource::Preset {
                        name: preset,
                        seed,
                        load_factor: 1.0,
                    },
                    *policy,
                )
                .labeled(format!("p={p}/{label}"));
                s.adaptive = *adaptive;
                s.failures = Some(failures);
                s.retry = retry;
                s.correlation = Some(CorrelationSpec {
                    cascade_prob: p,
                    domains: DomainSpec::intrepid(),
                    burst: BurstModel::Weibull { shape: 0.7 },
                });
                s.oracle = true;
                s
            })
        })
        .collect();
    let n_jobs = specs[0].jobs().len();
    eprintln!(
        "ablation_cascade: {} runs of {n_jobs} jobs, {jobs} workers",
        specs.len()
    );
    let (digests, report) = harness::run_fleet_sweep(&specs, jobs);
    harness::write_sweep_bench(&report);

    let header = [
        "config",
        "wait(min)",
        "interrupts",
        "aband#",
        "worst fault",
        "down node-h",
        "min avail",
        "util",
    ];
    let rows: Vec<Vec<String>> = digests
        .iter()
        .map(|d| {
            vec![
                d.summary.label.clone(),
                table::num(d.summary.avg_wait_mins, 1),
                d.interrupted_jobs.to_string(),
                d.summary.abandoned_jobs.to_string(),
                d.worst_domain.clone(),
                table::num(d.summary.node_downtime_hours, 0),
                table::num(d.min_availability, 4),
                table::num(d.summary.avg_utilization, 3),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Extension — cascade probability \u{00d7} adaptive scheme (correlated failures)\n\
         ({n_jobs} jobs, seed {seed}, 10y node MTBF, log-normal 2h repairs \u{03c3}=0.6,\n\
          Weibull-0.7 bursts, Intrepid domains 512,2,8, oracle on,\n\
          retry: \u{2264}10 attempts, 5-min exponential backoff)\n\n",
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nReading: escalation converts many small capacity leaks into a few\n\
         large collapses — down node-hours grow with cascade probability while\n\
         interruption counts stay in the same band, because one rack- or\n\
         power-domain fault kills at most a handful of resident jobs but takes\n\
         out 2-16 midplanes for the whole repair window. Adaptive 2D tuning\n\
         keeps its waiting-time edge at low cascade levels; under heavy\n\
         cascades both policies converge because the binding constraint is\n\
         surviving capacity, not queue ordering. Every cell ran with the\n\
         runtime invariant oracle checking allocator consistency, queue/run\n\
         partitioning, and EASY protection after every event.\n",
    );
    print!("{out}");
    results::write_result("ablation_cascade.txt", &out);
}
