//! Figure 5 — monitoring of system utilization under window tuning.
//!
//! Two runs (BF fixed at 1):
//!
//! * **(a)** static W = 1 — the base setting;
//! * **(b)** adaptive W — toggled 1 ↔ 4 whenever the 10-hour trailing
//!   utilization average drops below the 24-hour one ("similar to the
//!   monitoring of a stock price", paper §IV-C.2).
//!
//! Each panel shows the instant utilization plus the 1H/10H/24H trailing
//! averages over the first 200 hours. The paper's observation: adaptive
//! window tuning lifts and stabilizes the 24H line during the stable
//! period (hours ~50–150).
//!
//! Both runs go through the fault-tolerant fleet engine (`amjs-fleet`);
//! `--jobs 1` reproduces the old sequential output byte-for-byte.
//!
//! Usage: `cargo run -p amjs-bench --release --bin fig5
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness;
use amjs_bench::{chart, results};
use amjs_core::runner::SimulationOutcome;
use amjs_core::{AdaptiveKind, MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_sim::SimTime;

fn panel(out: &mut String, title: &str, o: &SimulationOutcome, until: SimTime) {
    let inst = o.util_instant.truncated(until);
    let h1 = o.util_1h.truncated(until);
    let h10 = o.util_10h.truncated(until);
    let h24 = o.util_24h.truncated(until);
    out.push_str(title);
    out.push('\n');
    out.push_str(&chart::ascii_chart(
        &[
            ("instant", &inst),
            ("1H", &h1),
            ("10H", &h10),
            ("24H", &h24),
        ],
        100,
        16,
        false,
    ));
    // The paper reads stability off the 24H line: quote its mean and
    // spread over the stable window (hours 50–150).
    let stable: Vec<f64> = o
        .util_24h
        .points()
        .iter()
        .filter(|&&(t, _)| t >= SimTime::from_hours(50) && t <= SimTime::from_hours(150))
        .map(|&(_, v)| v)
        .collect();
    if !stable.is_empty() {
        let mean = stable.iter().sum::<f64>() / stable.len() as f64;
        let var = stable.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / stable.len() as f64;
        out.push_str(&format!(
            "24H line over hours 50–150: mean {:.3}, stddev {:.4}\n\n",
            mean,
            var.sqrt()
        ));
    }
}

fn main() {
    let (seed, fast, workers) = harness::parse_args_with_jobs(harness::default_workers());
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("fig5: {} jobs, {workers} workers", jobs.len());

    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };
    let workload = WorkloadSource::Preset {
        name: preset,
        seed,
        load_factor: 1.0,
    };
    let mut adaptive_spec = RunSpec::new(
        "w-adaptive",
        MachineSpec::intrepid(),
        workload.clone(),
        PolicyParams::fcfs(),
    )
    .labeled("W adaptive");
    adaptive_spec.adaptive = AdaptiveKind::Window;
    let specs = vec![
        RunSpec::new(
            "bf1-w1",
            MachineSpec::intrepid(),
            workload,
            PolicyParams::new(1.0, 1),
        ),
        adaptive_spec,
    ];
    let outcomes = harness::run_fleet_outcomes(&specs, workers);
    let until = SimTime::from_hours(200);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 5 — system utilization, first 200 h ({} jobs, seed {seed})\n\n",
        jobs.len()
    ));
    panel(&mut out, "(a) static window, W=1", &outcomes[0], until);
    panel(
        &mut out,
        "(b) adaptive window tuning (W 1↔4 on 10H/24H crossover)",
        &outcomes[1],
        until,
    );
    out.push_str(&format!(
        "whole-run average utilization: static {:.3}, adaptive {:.3}\n",
        outcomes[0].summary.avg_utilization, outcomes[1].summary.avg_utilization
    ));
    out.push_str(&format!(
        "window size under tuning: min {:.0}, max {:.0} (toggles 1↔4)\n",
        outcomes[1]
            .window_series
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min),
        outcomes[1].window_series.max_value().unwrap_or(1.0),
    ));

    print!("{out}");
    results::write_result("fig5.txt", &out);

    // CSV: both runs' utilization series on the shared grid.
    let min_len = outcomes.iter().map(|o| o.util_instant.len()).min().unwrap();
    let mut cols: Vec<amjs_metrics::TimeSeries> = Vec::new();
    for (tag, o) in [("static", &outcomes[0]), ("adaptive", &outcomes[1])] {
        for (name, s) in [
            ("instant", &o.util_instant),
            ("1h", &o.util_1h),
            ("10h", &o.util_10h),
            ("24h", &o.util_24h),
        ] {
            let mut t = amjs_metrics::TimeSeries::new(format!("{tag}_{name}"));
            for &(st, v) in s.points().iter().take(min_len) {
                t.push(st, v);
            }
            cols.push(t);
        }
    }
    let refs: Vec<&amjs_metrics::TimeSeries> = cols.iter().collect();
    let p = results::write_result("fig5.csv", &amjs_metrics::series::to_csv(&refs));
    eprintln!("fig5: wrote results/fig5.txt and {}", p.display());
}
