//! Table III — runtime per scheduling iteration vs. window size.
//!
//! The paper times its Python implementation on a 2.4 GHz desktop:
//! 0.021 s at W=1 growing superlinearly to 0.584 s at W=5, and argues
//! this is affordable against Cobalt's 10-second scheduling cadence.
//! Our Rust implementation is orders of magnitude faster in absolute
//! terms; the reproducible claim is the *growth shape* (the permutation
//! search dominates, so cost grows roughly with W!).
//!
//! Method: build a congested scheduler state (a deep queue snapshot on a
//! busy Intrepid machine, captured mid-burst), then time
//! `Scheduler::schedule_pass` at W = 1..=5 over many iterations. The
//! same measurement is also available as a Criterion bench
//! (`cargo bench -p amjs-bench --bench table3`).
//!
//! Usage: `cargo run -p amjs-bench --release --bin table3 [--seed N]`

use std::time::Instant;

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::scheduler::{BackfillMode, QueuedJob, Scheduler};
use amjs_core::PolicyParams;
use amjs_platform::Platform;
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::synth::WorkloadSpec;

/// Build a congested snapshot: a busy machine plus a deep queue, taken
/// from the burst region of the month workload.
pub fn congested_snapshot(
    seed: u64,
) -> (
    amjs_platform::bgp::BgpCluster,
    Vec<(amjs_platform::AllocationId, SimTime)>,
    Vec<QueuedJob>,
    SimTime,
) {
    let jobs = WorkloadSpec::intrepid_month().generate(seed);
    let now = SimTime::from_hours(100); // mid-burst
    let mut machine = harness::intrepid();

    // Fill ~85% of the machine with synthetic running jobs whose
    // releases are spread over the next 12 hours.
    let mut releases = Vec::new();
    let mut i = 0usize;
    while machine.idle_nodes() > machine.total_nodes() / 8 && i < jobs.len() {
        let j = &jobs[i];
        i += 1;
        if let Some(id) = machine.allocate(j.nodes) {
            let release = now + SimDuration::from_mins(30 + (i as i64 * 37) % 720);
            releases.push((id, release));
        }
    }

    // Queue: the burst-era jobs, all "waiting" as of `now`.
    let queue: Vec<QueuedJob> = jobs
        .iter()
        .filter(|j| j.submit >= SimTime::from_hours(88) && j.submit < now)
        .map(|j| QueuedJob {
            id: j.id,
            submit: j.submit,
            nodes: j.nodes,
            walltime: j.walltime,
        })
        .collect();
    (machine, releases, queue, now)
}

fn main() {
    let (seed, _fast) = harness::parse_args();
    let (machine, releases, queue, now) = congested_snapshot(seed);
    eprintln!(
        "table3: queue depth {} jobs, machine {:.0}% busy",
        queue.len(),
        100.0 * (1.0 - machine.idle_nodes() as f64 / machine.total_nodes() as f64)
    );

    let release_of = |id: amjs_platform::AllocationId| -> SimTime {
        releases.iter().find(|&&(i, _)| i == id).unwrap().1
    };
    let base_plan = machine.plan(now, &release_of);

    let mut out = String::new();
    out.push_str(&format!(
        "Table III — runtime per scheduling iteration (queue depth {}, seed {seed})\n\n",
        queue.len()
    ));
    let header = ["window size", "time per iteration", "vs W=1", "paper (s)"];
    let paper = [0.021, 0.034, 0.069, 0.117, 0.584];
    let mut rows = Vec::new();
    let mut w1_time = 0.0f64;
    let mut csv = String::from("window,secs_per_iteration,paper_secs\n");

    for (wi, w) in (1..=5usize).enumerate() {
        let mut sched = Scheduler::new(PolicyParams::new(0.5, w), BackfillMode::Easy);
        sched.easy_protected = Some(harness::EASY_PROTECTED);
        sched.backfill_depth = Some(harness::BACKFILL_DEPTH);
        // Match the paper's setting: permutation search active in the
        // windows that matter (see Scheduler docs).
        let iterations: u32 = if w <= 2 { 400 } else { 100 };
        // Warm-up.
        let mut sink = 0usize;
        sink += sched.schedule_pass(now, &queue, &base_plan).starts.len();
        let begin = Instant::now();
        for _ in 0..iterations {
            sink += sched.schedule_pass(now, &queue, &base_plan).starts.len();
        }
        let secs = begin.elapsed().as_secs_f64() / iterations as f64;
        std::hint::black_box(sink);
        if w == 1 {
            w1_time = secs;
        }
        rows.push(vec![
            format!("W={w}"),
            format!("{:.3} ms", secs * 1e3),
            format!("{:.1}x", secs / w1_time),
            format!("{:.3}", paper[wi]),
        ]);
        csv.push_str(&format!("{w},{secs:.6},{}\n", paper[wi]));
    }
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\npaper column: Python on a 2.4 GHz desktop; ours: Rust, release build.\n\
         The comparable claim is the superlinear growth with W (permutation\n\
         search), and that even W=5 stays far below Cobalt's 10 s cadence.\n",
    );
    print!("{out}");
    results::write_result("table3.txt", &out);
    let p = results::write_result("table3.csv", &csv);
    eprintln!("table3: wrote results/table3.txt and {}", p.display());
}
