//! Table III — runtime per scheduling iteration vs. window size.
//!
//! The paper times its Python implementation on a 2.4 GHz desktop:
//! 0.021 s at W=1 growing superlinearly to 0.584 s at W=5, and argues
//! this is affordable against Cobalt's 10-second scheduling cadence.
//! Our Rust implementation is orders of magnitude faster in absolute
//! terms; the reproducible claim is the *growth shape* (the permutation
//! search dominates, so cost grows roughly with W!).
//!
//! Method: build a congested scheduler state (a deep queue snapshot on a
//! busy Intrepid machine, captured mid-burst), then time
//! `Scheduler::schedule_pass` at W = 1..=5 over many iterations. The
//! same measurement is also available as a Criterion bench
//! (`cargo bench -p amjs-bench --bench table3`).
//!
//! The five window sizes run as cells on the fault-tolerant fleet
//! engine (`amjs-fleet`) with a custom executor that times each one;
//! measurements come back through a side channel keyed by spec, so the
//! table is assembled in W order regardless of completion order.
//! `--jobs` defaults to 1 because this is a *timing* experiment —
//! parallel cells contend for cores and contaminate each other's
//! wall-clock numbers; raise it only for a structural smoke run.
//!
//! Usage: `cargo run -p amjs-bench --release --bin table3
//!         [--seed N] [--jobs N]`

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::scheduler::{BackfillMode, QueuedJob, Scheduler};
use amjs_core::{MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_fleet::RunDigest;
use amjs_metrics::MetricsSummary;
use amjs_platform::Platform;
use amjs_sim::{SimDuration, SimTime};
use amjs_workload::synth::WorkloadSpec;

/// Build a congested snapshot: a busy machine plus a deep queue, taken
/// from the burst region of the month workload.
pub fn congested_snapshot(
    seed: u64,
) -> (
    amjs_platform::bgp::BgpCluster,
    Vec<(amjs_platform::AllocationId, SimTime)>,
    Vec<QueuedJob>,
    SimTime,
) {
    let jobs = WorkloadSpec::intrepid_month().generate(seed);
    let now = SimTime::from_hours(100); // mid-burst
    let mut machine = harness::intrepid();

    // Fill ~85% of the machine with synthetic running jobs whose
    // releases are spread over the next 12 hours.
    let mut releases = Vec::new();
    let mut i = 0usize;
    while machine.idle_nodes() > machine.total_nodes() / 8 && i < jobs.len() {
        let j = &jobs[i];
        i += 1;
        if let Some(id) = machine.allocate(j.nodes) {
            let release = now + SimDuration::from_mins(30 + (i as i64 * 37) % 720);
            releases.push((id, release));
        }
    }

    // Queue: the burst-era jobs, all "waiting" as of `now`.
    let queue: Vec<QueuedJob> = jobs
        .iter()
        .filter(|j| j.submit >= SimTime::from_hours(88) && j.submit < now)
        .map(|j| QueuedJob {
            id: j.id,
            submit: j.submit,
            nodes: j.nodes,
            walltime: j.walltime,
        })
        .collect();
    (machine, releases, queue, now)
}

fn main() {
    let (seed, _fast, workers) = harness::parse_args_with_jobs(1);
    let (machine, releases, queue, now) = congested_snapshot(seed);
    eprintln!(
        "table3: queue depth {} jobs, machine {:.0}% busy, {workers} worker{}",
        queue.len(),
        100.0 * (1.0 - machine.idle_nodes() as f64 / machine.total_nodes() as f64),
        if workers == 1 { "" } else { "s" }
    );

    let release_of = |id: amjs_platform::AllocationId| -> SimTime {
        releases.iter().find(|&&(i, _)| i == id).unwrap().1
    };
    let base_plan = machine.plan(now, &release_of);

    // One cell per window size. The spec's workload field is nominal —
    // the executor times `schedule_pass` over the shared congested
    // snapshot instead of running a simulation — but W rides in the key
    // so the fleet journal and progress lines stay meaningful.
    let specs: Vec<RunSpec> = (1..=5usize)
        .map(|w| {
            RunSpec::new(
                format!("w{w}"),
                MachineSpec::intrepid(),
                WorkloadSource::Preset {
                    name: PresetName::Month,
                    seed,
                    load_factor: 1.0,
                },
                PolicyParams::new(0.5, w),
            )
        })
        .collect();

    let side: Arc<Mutex<BTreeMap<String, f64>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let shared = Arc::new((queue, base_plan, now));
    let exec: amjs_fleet::Exec = {
        let side = side.clone();
        let shared = shared.clone();
        Arc::new(move |spec| {
            let (queue, base_plan, now) = &*shared;
            let w = spec.policy.window;
            let mut sched = Scheduler::new(spec.policy, BackfillMode::Easy);
            sched.easy_protected = Some(harness::EASY_PROTECTED);
            sched.backfill_depth = Some(harness::BACKFILL_DEPTH);
            // Match the paper's setting: permutation search active in the
            // windows that matter (see Scheduler docs).
            let iterations: u32 = if w <= 2 { 400 } else { 100 };
            // Warm-up.
            let mut sink = 0usize;
            sink += sched.schedule_pass(*now, queue, base_plan).starts.len();
            let begin = Instant::now();
            for _ in 0..iterations {
                sink += sched.schedule_pass(*now, queue, base_plan).starts.len();
            }
            let secs = begin.elapsed().as_secs_f64() / iterations as f64;
            std::hint::black_box(sink);
            side.lock().unwrap().insert(spec.key.clone(), secs);
            // Placeholder digest: the measurement is the side-channel
            // value; no simulation ran, so the summary is empty.
            RunDigest {
                summary: MetricsSummary {
                    label: format!("W={w}"),
                    jobs_completed: 0,
                    avg_wait_mins: 0.0,
                    max_wait_mins: 0.0,
                    unfair_jobs: 0,
                    loc_percent: 0.0,
                    avg_utilization: 0.0,
                    mean_bounded_slowdown: 0.0,
                    makespan: SimDuration::from_secs(0),
                    node_downtime_hours: 0.0,
                    abandoned_jobs: 0,
                },
                queue_depth_mean: 0.0,
                interrupted_jobs: 0,
                lost_node_hours: 0.0,
                min_availability: 1.0,
                worst_domain: "-".to_string(),
                scheduler_passes: iterations as u64 + 1,
                backfilled_starts: 0,
            }
        })
    };
    let cfg = amjs_fleet::FleetConfig {
        workers: workers.max(1),
        heartbeat: Some(std::time::Duration::from_secs(10)),
        ..amjs_fleet::FleetConfig::default()
    };
    let report = amjs_fleet::run_fleet(&specs, &cfg, exec, None).expect("fleet sweep failed");
    for slot in &report.records {
        let rec = slot.as_ref().expect("fleet left a cell undispatched");
        assert!(
            rec.digest.is_some(),
            "cell {} ended {}: {}",
            rec.key,
            rec.status.as_str(),
            rec.error.as_deref().unwrap_or("no error recorded")
        );
    }
    let side = side.lock().unwrap();
    let (queue, ..) = &*shared;

    let mut out = String::new();
    out.push_str(&format!(
        "Table III — runtime per scheduling iteration (queue depth {}, seed {seed})\n\n",
        queue.len()
    ));
    let header = ["window size", "time per iteration", "vs W=1", "paper (s)"];
    let paper = [0.021, 0.034, 0.069, 0.117, 0.584];
    let mut rows = Vec::new();
    let w1_time = side["w1"];
    let mut csv = String::from("window,secs_per_iteration,paper_secs\n");

    for (wi, w) in (1..=5usize).enumerate() {
        let secs = side[&format!("w{w}")];
        rows.push(vec![
            format!("W={w}"),
            format!("{:.3} ms", secs * 1e3),
            format!("{:.1}x", secs / w1_time),
            format!("{:.3}", paper[wi]),
        ]);
        csv.push_str(&format!("{w},{secs:.6},{}\n", paper[wi]));
    }
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\npaper column: Python on a 2.4 GHz desktop; ours: Rust, release build.\n\
         The comparable claim is the superlinear growth with W (permutation\n\
         search), and that even W=5 stays far below Cobalt's 10 s cadence.\n",
    );
    print!("{out}");
    results::write_result("table3.txt", &out);
    let p = results::write_result("table3.csv", &csv);
    eprintln!("table3: wrote results/table3.txt and {}", p.display());
}
