//! Infrastructure experiment: what does durable run state cost?
//!
//! The persistence layer journals a 24-byte record (with a live-state
//! FNV-1a hash) after *every* event and serializes the full world +
//! event queue at the snapshot cadence. Both are on the hot path, so
//! their cost decides whether `--snapshot-every` is something you turn
//! on for every production-length run or only when hunting a bug. This
//! experiment runs the same month-long trace with persistence off and
//! at several cadences, reporting wall time, events/sec, per-snapshot
//! size, and total bytes written.
//!
//! Measured shape (see EXPERIMENTS.md): the overhead tracks the
//! *snapshot count* — serializing a few-hundred-KB world is the
//! expensive step — while the per-event journal record (one FNV-1a
//! pass over the live scheduler state) is nearly free at this world
//! size. At relaxed cadences persistence is within measurement noise
//! of free.
//!
//! The grid runs on the fault-tolerant fleet engine (`amjs-fleet`) with
//! a custom executor that times each cell; raw measurements come back
//! through a side channel keyed by spec, so the table is assembled in
//! spec order regardless of completion order. `--jobs` defaults to 1
//! because this is a *timing* experiment — parallel cells contend for
//! cores and contaminate each other's wall-clock numbers; raise it only
//! when you want a structural smoke run, not publishable timings.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_snapshot
//!         [--seed N] [--fast] [--jobs N]`

use std::collections::BTreeMap;
use std::fs;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::persist::PersistSpec;
use amjs_core::runner::SimulationBuilder;
use amjs_core::{MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_fleet::RunDigest;
use amjs_sim::journal::{journal_path, read_journal};
use amjs_sim::snapshot::SnapshotStore;

/// Raw measurements one grid cell sends back around the digest.
#[derive(Clone, Default)]
struct Measured {
    secs: f64,
    /// Events processed (0 for the baseline: it has no journal to count
    /// from; backfilled from a persistent cell, which is identical).
    events: u64,
    journal_bytes: u64,
    snap_count: usize,
    snap_bytes: u64,
    csv_row: String,
}

fn builder(spec: &RunSpec) -> SimulationBuilder<impl amjs_platform::Platform + amjs_sim::Snapshot> {
    SimulationBuilder::new(harness::intrepid(), spec.jobs())
        .policy(spec.policy)
        .backfill(spec.backfill)
        .easy_protected(spec.easy_protected)
        .backfill_depth(spec.backfill_depth)
        .label(spec.label.clone())
}

fn main() {
    // Timing experiment: sequential by default.
    let (seed, fast, workers) = harness::parse_args_with_jobs(1);

    // Cadences under test (events between snapshots). A month-long trace
    // handles on the order of 10^4 events, so these span "several
    // snapshots per run" down to "genesis only".
    let cadences: &[u64] = if fast {
        &[500, 2_000]
    } else {
        &[500, 2_000, 10_000]
    };
    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };

    // One spec per cell: the baseline plus each cadence. The cadence
    // itself is not part of `RunSpec` (it configures persistence, not
    // the simulation), so it rides in the key and is parsed back out by
    // the executor.
    let mk_spec = |key: String| {
        RunSpec::new(
            key,
            MachineSpec::intrepid(),
            WorkloadSource::Preset {
                name: preset,
                seed,
                load_factor: 1.0,
            },
            PolicyParams::new(0.5, 2),
        )
    };
    let mut specs = vec![mk_spec("off".to_string())];
    specs.extend(
        cadences
            .iter()
            .map(|&every| mk_spec(format!("every{every}"))),
    );

    eprintln!(
        "ablation_snapshot: {} cells of {} jobs, config {}, {workers} worker{}",
        specs.len(),
        specs[0].jobs().len(),
        specs[0].label,
        if workers == 1 { "" } else { "s" }
    );

    // Best-of-5 — a run is well under a second, so one page-cache
    // hiccup would otherwise dominate the row.
    const REPS: usize = 5;

    let side: Arc<Mutex<BTreeMap<String, Measured>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let exec: amjs_fleet::Exec = {
        let side = side.clone();
        Arc::new(move |spec| {
            let every: Option<u64> = spec
                .key
                .strip_prefix("every")
                .map(|n| n.parse().expect("cadence key"));
            let mut m = Measured {
                secs: f64::INFINITY,
                ..Measured::default()
            };
            let outcome = match every {
                None => {
                    let mut out = builder(spec).run();
                    for _ in 0..REPS {
                        let t0 = Instant::now();
                        out = builder(spec).run();
                        m.secs = m.secs.min(t0.elapsed().as_secs_f64());
                    }
                    out
                }
                Some(every) => {
                    let dir = std::env::temp_dir().join(format!(
                        "amjs-ablation-snapshot-{}-{every}",
                        std::process::id()
                    ));
                    let _ = fs::remove_dir_all(&dir);
                    fs::create_dir_all(&dir).unwrap();
                    let pspec = PersistSpec::new(&dir).snapshot_every_events(every).keep(2);
                    let mut out = None;
                    for _ in 0..REPS {
                        let t0 = Instant::now();
                        out = Some(builder(spec).run_persistent(&pspec).unwrap());
                        m.secs = m.secs.min(t0.elapsed().as_secs_f64());
                    }
                    let journal = read_journal(&journal_path(&dir, 0)).unwrap();
                    m.events = journal.records.len() as u64;
                    m.journal_bytes = fs::metadata(journal_path(&dir, 0)).unwrap().len();
                    let snaps = SnapshotStore::new(&dir, 2).list().unwrap();
                    m.snap_count = snaps.len();
                    m.snap_bytes = snaps
                        .iter()
                        .map(|(_, p)| fs::metadata(p).unwrap().len())
                        .sum();
                    let _ = fs::remove_dir_all(&dir);
                    out.unwrap()
                }
            };
            m.csv_row = outcome.summary.csv_row();
            side.lock().unwrap().insert(spec.key.clone(), m);
            RunDigest::from_outcome(&outcome)
        })
    };

    let cfg = amjs_fleet::FleetConfig {
        workers: workers.max(1),
        heartbeat: Some(std::time::Duration::from_secs(10)),
        ..amjs_fleet::FleetConfig::default()
    };
    let report = amjs_fleet::run_fleet(&specs, &cfg, exec, None).expect("fleet sweep failed");
    for slot in &report.records {
        let rec = slot.as_ref().expect("fleet left a cell undispatched");
        assert!(
            rec.digest.is_some(),
            "cell {} ended {}: {}",
            rec.key,
            rec.status.as_str(),
            rec.error.as_deref().unwrap_or("no error recorded")
        );
    }

    let side = side.lock().unwrap();
    let base = &side["off"];
    // Persistence must not change the outcome: every cell's summary row
    // must equal the baseline's.
    for (key, m) in side.iter() {
        assert_eq!(
            m.csv_row, base.csv_row,
            "persistence must not change the outcome (cell {key})"
        );
    }
    // Baseline events/sec uses the (identical) event count of the runs.
    let events_total = cadences
        .first()
        .map(|every| side[&format!("every{every}")].events)
        .unwrap_or(0);

    let mut rows = vec![vec![
        "off (baseline)".to_string(),
        table::num(base.secs, 2),
        table::num(events_total as f64 / base.secs / 1_000.0, 1),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]];
    for &every in cadences {
        let m = &side[&format!("every{every}")];
        let per_snap = m.snap_bytes as f64 / m.snap_count as f64;
        // Snapshots written over the run (rotation deletes most of them).
        let written = m.events / every + 1;
        rows.push(vec![
            format!("every {every} events"),
            table::num(m.secs, 2),
            table::num(m.events as f64 / m.secs / 1_000.0, 1),
            table::num((m.secs / base.secs - 1.0) * 100.0, 1),
            written.to_string(),
            table::num(per_snap / 1024.0, 1),
            table::num(m.journal_bytes as f64 / (1024.0 * 1024.0), 2),
        ]);
    }

    let header = [
        "persistence",
        "wall(s)",
        "kev/s",
        "overhead(%)",
        "snaps",
        "KB/snap",
        "journal(MB)",
    ];
    let rendered = table::render(&header, &rows);
    print!("{rendered}");
    let path = results::write_result("ablation_snapshot.txt", &rendered);
    eprintln!("wrote {}", path.display());
}
