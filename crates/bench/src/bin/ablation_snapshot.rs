//! Infrastructure experiment: what does durable run state cost?
//!
//! The persistence layer journals a 24-byte record (with a live-state
//! FNV-1a hash) after *every* event and serializes the full world +
//! event queue at the snapshot cadence. Both are on the hot path, so
//! their cost decides whether `--snapshot-every` is something you turn
//! on for every production-length run or only when hunting a bug. This
//! experiment runs the same month-long trace with persistence off and
//! at several cadences, reporting wall time, events/sec, per-snapshot
//! size, and total bytes written.
//!
//! Measured shape (see EXPERIMENTS.md): the overhead tracks the
//! *snapshot count* — serializing a few-hundred-KB world is the
//! expensive step — while the per-event journal record (one FNV-1a
//! pass over the live scheduler state) is nearly free at this world
//! size. At relaxed cadences persistence is within measurement noise
//! of free.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_snapshot [--seed N] [--fast]`

use std::fs;
use std::time::Instant;

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::persist::PersistSpec;
use amjs_core::runner::SimulationBuilder;
use amjs_sim::journal::{journal_path, read_journal};
use amjs_sim::snapshot::SnapshotStore;

fn builder(
    jobs: Vec<amjs_workload::Job>,
    config: &RunConfig,
) -> SimulationBuilder<impl amjs_platform::Platform + amjs_sim::Snapshot> {
    SimulationBuilder::new(harness::intrepid(), jobs)
        .policy(config.policy)
        .backfill(config.backfill)
        .easy_protected(Some(harness::EASY_PROTECTED))
        .backfill_depth(Some(harness::BACKFILL_DEPTH))
        .label(config.label.clone())
}

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    let config = RunConfig::fixed(0.5, 2);
    eprintln!(
        "ablation_snapshot: {} jobs, config {}",
        jobs.len(),
        config.label
    );

    // Baseline: no persistence at all. Best-of-5 — a run is well under a
    // second, so one page-cache hiccup would otherwise dominate the row.
    const REPS: usize = 5;
    let mut base_secs = f64::INFINITY;
    let mut baseline = builder(jobs.clone(), &config).run();
    for _ in 0..REPS {
        let t0 = Instant::now();
        baseline = builder(jobs.clone(), &config).run();
        base_secs = base_secs.min(t0.elapsed().as_secs_f64());
    }

    // Cadences under test (events between snapshots). A month-long trace
    // handles on the order of 10^4 events, so these span "several
    // snapshots per run" down to "genesis only".
    let cadences: &[u64] = if fast {
        &[500, 2_000]
    } else {
        &[500, 2_000, 10_000]
    };

    let mut rows = vec![vec![
        "off (baseline)".to_string(),
        table::num(base_secs, 2),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]];
    let mut events_total = 0u64;
    for &every in cadences {
        let dir = std::env::temp_dir().join(format!(
            "amjs-ablation-snapshot-{}-{every}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let spec = PersistSpec::new(&dir).snapshot_every_events(every).keep(2);

        let mut secs = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let out = builder(jobs.clone(), &config)
                .run_persistent(&spec)
                .unwrap();
            secs = secs.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                out.summary.csv_row(),
                baseline.summary.csv_row(),
                "persistence must not change the outcome"
            );
        }

        let journal = read_journal(&journal_path(&dir, 0)).unwrap();
        let events = journal.records.len() as u64;
        events_total = events;
        let journal_bytes = fs::metadata(journal_path(&dir, 0)).unwrap().len();
        let snaps = SnapshotStore::new(&dir, 2).list().unwrap();
        let snap_bytes: u64 = snaps
            .iter()
            .map(|(_, p)| fs::metadata(p).unwrap().len())
            .sum();
        let per_snap = snap_bytes as f64 / snaps.len() as f64;
        // Snapshots written over the run (rotation deletes most of them).
        let written = events / every + 1;

        rows.push(vec![
            format!("every {every} events"),
            table::num(secs, 2),
            table::num(events as f64 / secs / 1_000.0, 1),
            table::num((secs / base_secs - 1.0) * 100.0, 1),
            written.to_string(),
            table::num(per_snap / 1024.0, 1),
            table::num(journal_bytes as f64 / (1024.0 * 1024.0), 2),
        ]);
        let _ = fs::remove_dir_all(&dir);
    }
    // Baseline events/sec uses the (identical) event count of the runs.
    rows[0][2] = table::num(events_total as f64 / base_secs / 1_000.0, 1);

    let header = [
        "persistence",
        "wall(s)",
        "kev/s",
        "overhead(%)",
        "snaps",
        "KB/snap",
        "journal(MB)",
    ];
    let rendered = table::render(&header, &rows);
    print!("{rendered}");
    let path = results::write_result("ablation_snapshot.txt", &rendered);
    eprintln!("wrote {}", path.display());
}
