//! Figure 6 — two-dimensional policy tuning.
//!
//! Runs the 2D adaptive scheme (BF tuned on queue depth *and* W tuned on
//! the utilization trend, each by its own rule) and compares:
//!
//! * **(a)** queue depth (log scale, as in the paper's figure) against
//!   static FCFS, static BF=0.5, and BF-only tuning — 2D should avoid
//!   the burst spike *and* do well when the queue is shallow (the paper
//!   highlights hours 150–200);
//! * **(b)** the 2D run's utilization lines — 10H/24H more stable than
//!   the static panels of Fig. 5.
//!
//! The three post-threshold runs go through the fault-tolerant fleet
//! engine (`amjs-fleet`); the base run stays sequential because the
//! adaptive threshold is computed from it. `--jobs 1` reproduces the
//! old sequential output byte-for-byte.
//!
//! Usage: `cargo run -p amjs-bench --release --bin fig6
//!         [--seed N] [--fast] [--jobs N]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{chart, results};
use amjs_core::{AdaptiveKind, MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_sim::SimTime;

fn main() {
    let (seed, fast, workers) = harness::parse_args_with_jobs(harness::default_workers());
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("fig6: {} jobs, {workers} workers", jobs.len());

    let base = harness::run_one(harness::intrepid(), jobs.clone(), &RunConfig::fixed(1.0, 1));
    let threshold = base.queue_depth.mean_value().unwrap_or(1000.0);

    let preset = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };
    let workload = WorkloadSource::Preset {
        name: preset,
        seed,
        load_factor: 1.0,
    };
    let adaptive = |key: &str, label: &str, kind: AdaptiveKind| {
        let mut s = RunSpec::new(
            key,
            MachineSpec::intrepid(),
            workload.clone(),
            PolicyParams::fcfs(),
        )
        .labeled(label);
        s.adaptive = kind;
        s
    };
    let specs = vec![
        RunSpec::new(
            "bf0.5-w1",
            MachineSpec::intrepid(),
            workload.clone(),
            PolicyParams::new(0.5, 1),
        ),
        adaptive("bf-adaptive", "BF adaptive", AdaptiveKind::Bf { threshold }),
        adaptive(
            "2d-adaptive",
            "2D adaptive",
            AdaptiveKind::TwoD { threshold },
        ),
    ];
    let rest = harness::run_fleet_outcomes(&specs, workers);
    let (bf05, bf_ad, twod) = (&rest[0], &rest[1], &rest[2]);

    let until = SimTime::from_hours(200);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 6 — 2D policy tuning ({} jobs, seed {seed}, threshold {threshold:.0} min)\n\n",
        jobs.len()
    ));

    out.push_str("(a) queue depth, log scale, first 200 h\n");
    out.push_str(&chart::ascii_chart(
        &[
            ("BF=1 static", &base.queue_depth.truncated(until)),
            ("BF=0.5 static", &bf05.queue_depth.truncated(until)),
            ("BF adaptive", &bf_ad.queue_depth.truncated(until)),
            ("2D adaptive", &twod.queue_depth.truncated(until)),
        ],
        100,
        20,
        true,
    ));

    // The paper's claim: 2D outperforms the others between hours 150 and
    // 200 (shallow-queue regime) and avoids the burst spike.
    let window_mean = |s: &amjs_metrics::TimeSeries, lo: i64, hi: i64| -> f64 {
        let vals: Vec<f64> = s
            .points()
            .iter()
            .filter(|&&(t, _)| t >= SimTime::from_hours(lo) && t <= SimTime::from_hours(hi))
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    out.push_str("\nmean queue depth (minutes) by regime:\n");
    out.push_str(&format!(
        "  {:<16} {:>12} {:>12} {:>12}\n",
        "config", "burst 88-130h", "calm 150-200h", "full trace"
    ));
    for (name, o) in [
        ("BF=1 static", &base),
        ("BF=0.5 static", bf05),
        ("BF adaptive", bf_ad),
        ("2D adaptive", twod),
    ] {
        out.push_str(&format!(
            "  {:<16} {:>12.0} {:>12.0} {:>12.0}\n",
            name,
            window_mean(&o.queue_depth, 88, 130),
            window_mean(&o.queue_depth, 150, 200),
            o.queue_depth.mean_value().unwrap_or(0.0),
        ));
    }

    out.push_str("\n(b) 2D run: utilization lines, first 200 h\n");
    out.push_str(&chart::ascii_chart(
        &[
            ("instant", &twod.util_instant.truncated(until)),
            ("1H", &twod.util_1h.truncated(until)),
            ("10H", &twod.util_10h.truncated(until)),
            ("24H", &twod.util_24h.truncated(until)),
        ],
        100,
        16,
        false,
    ));
    // Stability comparison: stddev of the 10H line, static base vs 2D.
    let stddev = |s: &amjs_metrics::TimeSeries| -> f64 {
        let vals: Vec<f64> = s
            .truncated(until)
            .points()
            .iter()
            .map(|&(_, v)| v)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len().max(1) as f64).sqrt()
    };
    out.push_str(&format!(
        "\n10H-line stddev (first 200 h): static {:.4} vs 2D {:.4} (paper: 2D more stable)\n",
        stddev(&base.util_10h),
        stddev(&twod.util_10h),
    ));
    out.push_str(&format!(
        "24H-line stddev (first 200 h): static {:.4} vs 2D {:.4}\n",
        stddev(&base.util_24h),
        stddev(&twod.util_24h),
    ));

    print!("{out}");
    results::write_result("fig6.txt", &out);

    let min_len = [&base, bf05, bf_ad, twod]
        .iter()
        .map(|o| o.queue_depth.len())
        .min()
        .unwrap();
    let mut cols: Vec<amjs_metrics::TimeSeries> = Vec::new();
    for (name, o) in [
        ("qd_bf1", &base),
        ("qd_bf05", bf05),
        ("qd_bf_adaptive", bf_ad),
        ("qd_2d", twod),
    ] {
        let mut t = amjs_metrics::TimeSeries::new(name);
        for &(st, v) in o.queue_depth.points().iter().take(min_len) {
            t.push(st, v);
        }
        cols.push(t);
    }
    for (name, s) in [
        ("util2d_10h", &twod.util_10h),
        ("util2d_24h", &twod.util_24h),
        ("bf_2d", &twod.bf_series),
        ("w_2d", &twod.window_series),
    ] {
        let mut t = amjs_metrics::TimeSeries::new(name);
        for &(st, v) in s.points().iter().take(min_len) {
            t.push(st, v);
        }
        cols.push(t);
    }
    let refs: Vec<&amjs_metrics::TimeSeries> = cols.iter().collect();
    let p = results::write_result("fig6.csv", &amjs_metrics::series::to_csv(&refs));
    eprintln!("fig6: wrote results/fig6.txt and {}", p.display());
}
