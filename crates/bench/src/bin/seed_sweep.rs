//! Robustness: Table II across many workload seeds.
//!
//! The paper evaluates on one fixed production trace; a synthetic
//! reproduction can do better and ask whether the conclusions survive
//! workload resampling. This experiment reruns the Table II
//! configurations over N seeds and reports mean ± stddev per cell, plus
//! how often each qualitative ordering held.
//!
//! Usage: `cargo run -p amjs-bench --release --bin seed_sweep [--seeds N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    // Local argument handling: --seeds N (count), --fast.
    let args: Vec<String> = std::env::args().collect();
    let mut n_seeds = 8usize;
    let mut fast = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                n_seeds = args[i + 1].parse().expect("--seeds N");
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            other => panic!("unknown argument {other:?} (supported: --seeds N, --fast)"),
        }
    }

    let labels = [
        "BF=1/W=1",
        "BF=1/W=4",
        "BF=0.5/W=1",
        "BF=0.5/W=4",
        "BF Adapt.",
        "2D Adapt.",
    ];
    // per-config metric samples across seeds.
    let mut waits: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut unfairs: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut locs: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut orderings_held = [0usize; 3];

    for seed_idx in 0..n_seeds {
        let seed = 1000 + seed_idx as u64 * 77;
        let jobs = harness::experiment_jobs(seed, fast);
        let base = harness::run_one(harness::intrepid(), jobs.clone(), &RunConfig::fixed(1.0, 1));
        let threshold = base.queue_depth.mean_value().unwrap_or(1000.0);
        let configs = vec![
            RunConfig::fixed(1.0, 4),
            RunConfig::fixed(0.5, 1),
            RunConfig::fixed(0.5, 4),
            RunConfig::bf_adaptive(threshold),
            RunConfig::two_d_adaptive(threshold),
        ];
        let mut outs = vec![base];
        outs.extend(harness::run_sweep(harness::intrepid, &jobs, &configs));
        eprintln!(
            "seed {seed}: base wait {:.0} min over {} jobs",
            outs[0].summary.avg_wait_mins,
            jobs.len()
        );

        for (k, o) in outs.iter().enumerate() {
            waits[k].push(o.summary.avg_wait_mins);
            unfairs[k].push(o.summary.unfair_jobs as f64);
            locs[k].push(o.summary.loc_percent);
        }
        // Orderings the reproduction pins (see tests/paper_shapes.rs):
        // (1) BF=0.5/W=1 beats the base on wait;
        // (2) unfairness grows from base to BF=0.5/W=4;
        // (3) 2D stays fairer than BF=0.5/W=4.
        let s = |k: usize| &outs[k].summary;
        if s(2).avg_wait_mins < s(0).avg_wait_mins {
            orderings_held[0] += 1;
        }
        if s(3).unfair_jobs > s(0).unfair_jobs {
            orderings_held[1] += 1;
        }
        if s(5).unfair_jobs <= s(3).unfair_jobs {
            orderings_held[2] += 1;
        }
    }

    let header = [
        "configuration",
        "wait (mean±sd)",
        "unfair (mean±sd)",
        "LoC% (mean±sd)",
    ];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(k, label)| {
            let (wm, ws) = mean_std(&waits[k]);
            let (um, us) = mean_std(&unfairs[k]);
            let (lm, ls) = mean_std(&locs[k]);
            vec![
                label.to_string(),
                format!("{wm:.0}±{ws:.0}"),
                format!("{um:.0}±{us:.0}"),
                format!("{lm:.1}±{ls:.1}"),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Seed robustness — Table II configurations over {n_seeds} workload seeds\n\n"
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(&format!(
        "\norderings held across seeds:\n\
         \x20 BF=0.5 cuts wait vs base:          {}/{n_seeds}\n\
         \x20 unfairness grows toward BF=0.5/W=4: {}/{n_seeds}\n\
         \x20 2D fairer than BF=0.5/W=4:          {}/{n_seeds}\n",
        orderings_held[0], orderings_held[1], orderings_held[2]
    ));
    print!("{out}");
    results::write_result("seed_sweep.txt", &out);
}
