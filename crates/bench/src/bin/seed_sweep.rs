//! Robustness: Table II across many workload seeds.
//!
//! The paper evaluates on one fixed production trace; a synthetic
//! reproduction can do better and ask whether the conclusions survive
//! workload resampling. This experiment reruns the Table II
//! configurations over N seeds and reports mean ± stddev per cell, plus
//! how often each qualitative ordering held.
//!
//! The grid runs on the fault-tolerant fleet engine (`amjs-fleet`):
//! two phases, because the adaptive thresholds are calibrated from each
//! seed's base run. `--jobs 1` reproduces the old sequential sweep;
//! higher worker counts change only the wall clock, never the numbers.
//!
//! Usage: `cargo run -p amjs-bench --release --bin seed_sweep
//!         [--seeds N] [--fast] [--jobs N]`

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::{AdaptiveKind, MachineSpec, PolicyParams, PresetName, RunSpec, WorkloadSource};
use amjs_fleet::RunDigest;

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn spec(
    key: String,
    label: &str,
    seed: u64,
    fast: bool,
    policy: PolicyParams,
    adaptive: AdaptiveKind,
) -> RunSpec {
    let name = if fast {
        PresetName::Week
    } else {
        PresetName::Month
    };
    let mut s = RunSpec::new(
        key,
        MachineSpec::intrepid(),
        WorkloadSource::Preset {
            name,
            seed,
            load_factor: 1.0,
        },
        policy,
    )
    .labeled(label);
    s.adaptive = adaptive;
    s
}

fn main() {
    // Local argument handling: --seeds N (count), --fast, --jobs N.
    let args: Vec<String> = std::env::args().collect();
    let mut n_seeds = 8usize;
    let mut fast = false;
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                n_seeds = args[i + 1].parse().expect("--seeds N");
                i += 2;
            }
            "--jobs" => {
                jobs = args[i + 1].parse().expect("--jobs N");
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            other => {
                panic!("unknown argument {other:?} (supported: --seeds N, --fast, --jobs N)")
            }
        }
    }

    let seeds: Vec<u64> = (0..n_seeds).map(|i| 1000 + i as u64 * 77).collect();

    // Phase 1: the base configuration per seed, whose mean queue depth
    // calibrates that seed's adaptive thresholds.
    let base_specs: Vec<RunSpec> = seeds
        .iter()
        .map(|&seed| {
            spec(
                format!("base-s{seed}"),
                "BF=1/W=1",
                seed,
                fast,
                PolicyParams::new(1.0, 1),
                AdaptiveKind::None,
            )
        })
        .collect();
    let (base_digests, _) = harness::run_fleet_sweep(&base_specs, jobs);

    // Phase 2: the remaining five Table II rows per seed.
    let labels = [
        "BF=1/W=1",
        "BF=1/W=4",
        "BF=0.5/W=1",
        "BF=0.5/W=4",
        "BF Adapt.",
        "2D Adapt.",
    ];
    let mut rest_specs = Vec::new();
    for (&seed, base) in seeds.iter().zip(&base_digests) {
        let threshold = if base.queue_depth_mean > 0.0 {
            base.queue_depth_mean
        } else {
            1000.0
        };
        eprintln!(
            "seed {seed}: base wait {:.0} min, threshold {threshold:.0} min",
            base.summary.avg_wait_mins
        );
        let rows: [(&str, &str, PolicyParams, AdaptiveKind); 5] = [
            (
                "bf1-w4",
                labels[1],
                PolicyParams::new(1.0, 4),
                AdaptiveKind::None,
            ),
            (
                "bf0.5-w1",
                labels[2],
                PolicyParams::new(0.5, 1),
                AdaptiveKind::None,
            ),
            (
                "bf0.5-w4",
                labels[3],
                PolicyParams::new(0.5, 4),
                AdaptiveKind::None,
            ),
            (
                "bf-adapt",
                labels[4],
                PolicyParams::fcfs(),
                AdaptiveKind::Bf { threshold },
            ),
            (
                "2d-adapt",
                labels[5],
                PolicyParams::fcfs(),
                AdaptiveKind::TwoD { threshold },
            ),
        ];
        for (stem, label, policy, adaptive) in rows {
            rest_specs.push(spec(
                format!("{stem}-s{seed}"),
                label,
                seed,
                fast,
                policy,
                adaptive,
            ));
        }
    }
    let (rest_digests, report) = harness::run_fleet_sweep(&rest_specs, jobs);
    harness::write_sweep_bench(&report);

    // Regroup: per-seed rows [base, bf1-w4, bf0.5-w1, bf0.5-w4, bf, 2d].
    let mut waits: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut unfairs: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut locs: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut orderings_held = [0usize; 3];
    for (idx, base) in base_digests.iter().enumerate() {
        let per_seed: Vec<&RunDigest> = std::iter::once(base)
            .chain(rest_digests[idx * 5..idx * 5 + 5].iter())
            .collect();
        for (k, d) in per_seed.iter().enumerate() {
            waits[k].push(d.summary.avg_wait_mins);
            unfairs[k].push(d.summary.unfair_jobs as f64);
            locs[k].push(d.summary.loc_percent);
        }
        // Orderings the reproduction pins (see tests/paper_shapes.rs):
        // (1) BF=0.5/W=1 beats the base on wait;
        // (2) unfairness grows from base to BF=0.5/W=4;
        // (3) 2D stays fairer than BF=0.5/W=4.
        let s = |k: usize| &per_seed[k].summary;
        if s(2).avg_wait_mins < s(0).avg_wait_mins {
            orderings_held[0] += 1;
        }
        if s(3).unfair_jobs > s(0).unfair_jobs {
            orderings_held[1] += 1;
        }
        if s(5).unfair_jobs <= s(3).unfair_jobs {
            orderings_held[2] += 1;
        }
    }

    let header = [
        "configuration",
        "wait (mean±sd)",
        "unfair (mean±sd)",
        "LoC% (mean±sd)",
    ];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(k, label)| {
            let (wm, ws) = mean_std(&waits[k]);
            let (um, us) = mean_std(&unfairs[k]);
            let (lm, ls) = mean_std(&locs[k]);
            vec![
                label.to_string(),
                format!("{wm:.0}±{ws:.0}"),
                format!("{um:.0}±{us:.0}"),
                format!("{lm:.1}±{ls:.1}"),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Seed robustness — Table II configurations over {n_seeds} workload seeds\n\n"
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(&format!(
        "\norderings held across seeds:\n\
         \x20 BF=0.5 cuts wait vs base:          {}/{n_seeds}\n\
         \x20 unfairness grows toward BF=0.5/W=4: {}/{n_seeds}\n\
         \x20 2D fairer than BF=0.5/W=4:          {}/{n_seeds}\n",
        orderings_held[0], orderings_held[1], orderings_held[2]
    ));
    print!("{out}");
    results::write_result("seed_sweep.txt", &out);
}
