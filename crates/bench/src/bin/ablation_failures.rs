//! Extension experiment: scheduling under node failures, with energy
//! accounting — the two "system cost" metrics the paper's §V names as
//! future work, implemented here.
//!
//! Failures arrive as a Poisson process over the machine; a failure
//! inside a running partition kills the job, which loses its progress
//! and reruns. The question the paper's framework would ask: *which
//! policies limit the work lost to failures?* Long jobs carry more
//! exposure (probability of interruption grows with nodes × residence
//! time), so short-job-leaning policies should lose less — and they
//! also deliver work with less idle energy burn.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_failures [--seed N] [--fast]`

use amjs_bench::harness::{self, RunConfig};
use amjs_bench::{results, table};
use amjs_core::failures::FailureSpec;
use amjs_core::runner::SimulationBuilder;
use amjs_metrics::energy::EnergyModel;

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_failures: {} jobs", jobs.len());

    // Production-flavored failure rate: 50-year node MTBF → about one
    // machine-level failure per 10.7 h at Intrepid scale (~65 over the
    // month). Much higher rates livelock the largest jobs — a
    // full-machine 12-hour run cannot finish if its partition fails
    // more than once per attempt on average — which is the classic
    // motivation for checkpointing, not a scheduling-policy question.
    let spec = FailureSpec::bgp_production(seed ^ 0xFA11);

    // (config, checkpoint interval) variants: the last row shows what
    // hourly checkpointing buys back.
    let variants: Vec<(RunConfig, Option<amjs_sim::SimDuration>, String)> = vec![
        (RunConfig::fixed(1.0, 1), None, "BF=1/W=1".into()),
        (RunConfig::fixed(0.5, 1), None, "BF=0.5/W=1".into()),
        (RunConfig::fixed(0.5, 4), None, "BF=0.5/W=4".into()),
        (
            RunConfig::fixed(0.5, 4),
            Some(amjs_sim::SimDuration::from_hours(1)),
            "BF=0.5/W=4 +ckpt1h".into(),
        ),
    ];
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(config, ckpt, label)| {
                let jobs = jobs.clone();
                let label = label.clone();
                s.spawn(move || {
                    SimulationBuilder::new(harness::intrepid(), jobs)
                        .policy(config.policy)
                        .backfill(config.backfill)
                        .easy_protected(Some(harness::EASY_PROTECTED))
                        .backfill_depth(Some(harness::BACKFILL_DEPTH))
                        .failures(Some(spec))
                        .checkpointing(*ckpt)
                        .energy_model(Some(EnergyModel::bgp()))
                        .label(label)
                        .run()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let header = [
        "config",
        "wait(min)",
        "interrupts",
        "lost node-h",
        "energy MWh",
        "kWh/node-h",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let e = o.energy.expect("energy model configured");
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.interrupted_jobs.to_string(),
                table::num(o.lost_node_hours, 0),
                table::num(e.total_mwh, 1),
                table::num(e.kwh_per_node_hour, 4),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Extension — failures and energy (\u{00a7}V future work)\n\
         ({} jobs, seed {seed}, machine MTBF {:.1} h, BG/P power model)\n\n",
        jobs.len(),
        spec.machine_mtbf_secs(40_960) / 3600.0,
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nReading: interruption counts are similar across policies (the failure\n\
         process does not care who is running), but *lost node-hours* track how\n\
         much exposed in-flight work each policy keeps, and kWh per delivered\n\
         node-hour rewards policies that keep the machine busy.\n",
    );
    print!("{out}");
    results::write_result("ablation_failures.txt", &out);
}
