//! Ablation: backfilling discipline and reservation-protection style.
//!
//! DESIGN.md calls out two design choices the paper leaves open and this
//! reproduction had to make concrete:
//!
//! 1. **Backfill mode** — none / EASY / conservative (paper step 6 says
//!    "conforming the original configuration of backfilling schemes").
//! 2. **Protection style** — whether a protected reservation pins the
//!    specific partition block the window pass chose
//!    (`ProtectionStyle::PinnedBlocks`) or only its start time
//!    (`TimeFlexible`, textbook EASY shadow semantics), and whether EASY
//!    protects the head reservation only (`easy_protected = Some(1)`,
//!    the production default used by all experiments) or the whole
//!    first window (`None`, the paper's literal wording).
//!
//! This binary quantifies all of it on the standard month trace.
//!
//! Usage: `cargo run -p amjs-bench --release --bin ablation_backfill [--seed N] [--fast]`

use amjs_bench::harness;
use amjs_bench::{results, table};
use amjs_core::runner::SimulationBuilder;
use amjs_core::scheduler::{BackfillMode, ProtectionStyle};
use amjs_core::PolicyParams;

struct Variant {
    label: &'static str,
    policy: PolicyParams,
    backfill: BackfillMode,
    protection: ProtectionStyle,
    easy_protected: Option<usize>,
}

fn main() {
    let (seed, fast) = harness::parse_args();
    let jobs = harness::experiment_jobs(seed, fast);
    eprintln!("ablation_backfill: {} jobs", jobs.len());

    let fcfs = PolicyParams::fcfs();
    let w4 = PolicyParams::new(1.0, 4);
    let variants = [
        Variant {
            label: "no-backfill",
            policy: fcfs,
            backfill: BackfillMode::None,
            protection: ProtectionStyle::PinnedBlocks,
            easy_protected: Some(1),
        },
        Variant {
            label: "easy/head/pinned",
            policy: fcfs,
            backfill: BackfillMode::Easy,
            protection: ProtectionStyle::PinnedBlocks,
            easy_protected: Some(1),
        },
        Variant {
            label: "easy/head/flexible",
            policy: fcfs,
            backfill: BackfillMode::Easy,
            protection: ProtectionStyle::TimeFlexible,
            easy_protected: Some(1),
        },
        Variant {
            label: "easy/window/pinned W=4",
            policy: w4,
            backfill: BackfillMode::Easy,
            protection: ProtectionStyle::PinnedBlocks,
            easy_protected: None,
        },
        Variant {
            label: "easy/head/pinned W=4",
            policy: w4,
            backfill: BackfillMode::Easy,
            protection: ProtectionStyle::PinnedBlocks,
            easy_protected: Some(1),
        },
        Variant {
            label: "conservative",
            policy: fcfs,
            backfill: BackfillMode::Conservative,
            protection: ProtectionStyle::PinnedBlocks,
            easy_protected: Some(1),
        },
    ];

    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|v| {
                let jobs = jobs.clone();
                s.spawn(move || {
                    let mut b = SimulationBuilder::new(harness::intrepid(), jobs)
                        .policy(v.policy)
                        .backfill(v.backfill)
                        .easy_protected(v.easy_protected)
                        .backfill_depth(Some(harness::BACKFILL_DEPTH))
                        .label(v.label);
                    b = b.protection(v.protection);
                    b.run()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let header = ["variant", "wait(min)", "unfair#", "LoC(%)", "backfills"];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.summary.label.clone(),
                table::num(o.summary.avg_wait_mins, 1),
                o.summary.unfair_jobs.to_string(),
                table::num(o.summary.loc_percent, 1),
                o.backfilled_starts.to_string(),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — backfilling discipline and protection style ({} jobs, seed {seed})\n\n",
        jobs.len()
    ));
    out.push_str(&table::render(&header, &rows));
    out.push_str(
        "\nReading: no-backfill shows what EASY buys; pinned-vs-flexible shows\n\
         the cost of block-level protection on a partitioned machine;\n\
         window-vs-head protection isolates the `easy_protected` default; and\n\
         conservative bounds the strictest discipline.\n",
    );
    print!("{out}");
    results::write_result("ablation_backfill.txt", &out);
}
