//! Regression tests for the paper's qualitative findings — the shapes of
//! Table II and Figures 3–6 — on a scaled-down workload so the suite
//! stays fast. Absolute numbers are workload-dependent; these tests pin
//! the *orderings* the reproduction must preserve.

use amjs::core::adaptive::AdaptiveScheme;
use amjs::prelude::*;
use amjs::workload::synth::BurstSpec;

/// A 1/10th-scale Intrepid scenario: 8 midplanes, bursty, short-heavy —
/// the same regime as the full experiments but ~100x faster.
fn scenario(seed: u64) -> (BgpCluster, Vec<Job>) {
    let mut spec = WorkloadSpec::small_test();
    spec.span = SimDuration::from_hours(48);
    spec.mean_interarrival = SimDuration::from_secs(700);
    spec.walltime_sigma = 1.5;
    spec.walltime_median_mins = 45.0;
    spec.size_classes = vec![
        amjs::workload::synth::SizeClass {
            nodes: 512,
            weight: 30.0,
        },
        amjs::workload::synth::SizeClass {
            nodes: 1024,
            weight: 30.0,
        },
        amjs::workload::synth::SizeClass {
            nodes: 2048,
            weight: 25.0,
        },
        amjs::workload::synth::SizeClass {
            nodes: 4096,
            weight: 15.0,
        },
    ];
    spec.bursts = vec![BurstSpec {
        start: SimTime::from_hours(10),
        duration: SimDuration::from_hours(4),
        rate_multiplier: 15.0,
        walltime_scale: 0.4,
        size_cap: Some(1024),
    }];
    (BgpCluster::new(8, 512), spec.generate(seed))
}

fn run(policy: PolicyParams, adaptive: AdaptiveScheme, seed: u64) -> SimulationOutcome {
    let (machine, jobs) = scenario(seed);
    SimulationBuilder::new(machine, jobs)
        .policy(policy)
        .adaptive(adaptive)
        .easy_protected(Some(1))
        .backfill_depth(Some(16))
        .run()
}

/// Fig. 3(a) / Table II: moving the balance factor from FCFS toward SJF
/// must cut the average wait substantially on a congested machine.
#[test]
fn bf_toward_sjf_cuts_wait() {
    let fcfs = run(PolicyParams::fcfs(), AdaptiveScheme::none(), 42);
    let bf05 = run(PolicyParams::new(0.5, 1), AdaptiveScheme::none(), 42);
    assert!(
        bf05.summary.avg_wait_mins < 0.85 * fcfs.summary.avg_wait_mins,
        "BF=0.5 wait {:.1} must be well below FCFS {:.1}",
        bf05.summary.avg_wait_mins,
        fcfs.summary.avg_wait_mins
    );
}

/// Fig. 3(b): unfairness grows as the policy approaches SJF.
#[test]
fn unfairness_grows_toward_sjf() {
    let fcfs = run(PolicyParams::fcfs(), AdaptiveScheme::none(), 42);
    let sjf = run(PolicyParams::sjf(), AdaptiveScheme::none(), 42);
    assert!(
        sjf.summary.unfair_jobs > fcfs.summary.unfair_jobs,
        "SJF unfair {} must exceed FCFS {}",
        sjf.summary.unfair_jobs,
        fcfs.summary.unfair_jobs
    );
}

/// Fig. 3(c): enlarging the allocation window reduces loss of capacity
/// at FCFS-like balance factors.
#[test]
fn window_reduces_loss_of_capacity() {
    let w1 = run(PolicyParams::fcfs(), AdaptiveScheme::none(), 42);
    let w4 = run(PolicyParams::new(1.0, 4), AdaptiveScheme::none(), 42);
    assert!(
        w4.summary.loc_percent < w1.summary.loc_percent,
        "W=4 LoC {:.1} must be below W=1 LoC {:.1}",
        w4.summary.loc_percent,
        w1.summary.loc_percent
    );
}

/// Fig. 4: the adaptive balance factor keeps the burst's peak queue
/// depth well below FCFS's, and its unfair count below static BF=0.5's.
#[test]
fn adaptive_bf_tames_burst_and_limits_unfairness() {
    let fcfs = run(PolicyParams::fcfs(), AdaptiveScheme::none(), 42);
    let threshold = fcfs.queue_depth.mean_value().unwrap();
    let bf05 = run(PolicyParams::new(0.5, 1), AdaptiveScheme::none(), 42);
    let adaptive = run(
        PolicyParams::fcfs(),
        AdaptiveScheme::bf_adaptive(threshold),
        42,
    );
    let peak = |o: &SimulationOutcome| o.queue_depth.max_value().unwrap();
    assert!(
        peak(&adaptive) < peak(&fcfs),
        "adaptive peak {:.0} !< FCFS peak {:.0}",
        peak(&adaptive),
        peak(&fcfs)
    );
    assert!(
        adaptive.summary.unfair_jobs <= bf05.summary.unfair_jobs,
        "adaptive unfair {} must not exceed static BF=0.5 {}",
        adaptive.summary.unfair_jobs,
        bf05.summary.unfair_jobs
    );
    // The tuner really toggled.
    let bfs: Vec<f64> = adaptive
        .bf_series
        .points()
        .iter()
        .map(|&(_, v)| v)
        .collect();
    assert!(bfs.contains(&1.0) && bfs.contains(&0.5));
}

/// Table II's integrated claim: the 2D adaptive scheme improves the
/// average wait over the base policy while staying fairer than the most
/// aggressive static configuration.
#[test]
fn two_d_balances_wait_and_fairness() {
    let fcfs = run(PolicyParams::fcfs(), AdaptiveScheme::none(), 42);
    let threshold = fcfs.queue_depth.mean_value().unwrap();
    let aggressive = run(PolicyParams::new(0.5, 4), AdaptiveScheme::none(), 42);
    let twod = run(PolicyParams::fcfs(), AdaptiveScheme::two_d(threshold), 42);

    assert!(
        twod.summary.avg_wait_mins < fcfs.summary.avg_wait_mins,
        "2D wait {:.1} !< base {:.1}",
        twod.summary.avg_wait_mins,
        fcfs.summary.avg_wait_mins
    );
    assert!(
        twod.summary.unfair_jobs <= aggressive.summary.unfair_jobs,
        "2D unfair {} must not exceed BF=0.5/W=4's {}",
        twod.summary.unfair_jobs,
        aggressive.summary.unfair_jobs
    );
}

/// Table III's practicality claim, in spirit: a scheduling pass on a
/// deep queue stays far under Cobalt's 10-second cadence even at W=5.
#[test]
fn scheduling_pass_is_fast_enough_at_w5() {
    use amjs::core::scheduler::{QueuedJob, Scheduler};
    use amjs::platform::Platform;

    let (mut machine, jobs) = scenario(7);
    let now = SimTime::from_hours(12);
    let mut releases = Vec::new();
    for job in jobs.iter().take(40) {
        if let Some(id) = machine.allocate(job.nodes) {
            releases.push((id, now + job.walltime));
        }
    }
    let release_of =
        |id: amjs::platform::AllocationId| releases.iter().find(|&&(i, _)| i == id).unwrap().1;
    let plan = machine.plan(now, &release_of);
    let queue: Vec<QueuedJob> = jobs
        .iter()
        .take(120)
        .map(|j| QueuedJob {
            id: j.id,
            submit: j.submit,
            nodes: j.nodes,
            walltime: j.walltime,
        })
        .collect();

    let sched = Scheduler::new(PolicyParams::new(0.5, 5), BackfillMode::Easy);
    let begin = std::time::Instant::now();
    let decision = sched.schedule_pass(now, &queue, &plan);
    let elapsed = begin.elapsed();
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "one W=5 pass took {elapsed:?} (must stay far below the 10 s cadence)"
    );
    // And it actually scheduled something sensible.
    assert!(decision.starts.len() + decision.reservations.len() > 0);
}
