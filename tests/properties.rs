//! Property-based tests across the whole stack: random workload specs
//! and policies must always yield complete, capacity-respecting,
//! deterministic simulations.

use amjs::prelude::*;
use proptest::prelude::*;

/// Small random workloads: handful of size classes, random load.
fn spec_strategy() -> impl Strategy<Value = (WorkloadSpec, u64)> {
    (
        60i64..600,   // mean interarrival seconds
        10f64..90.0,  // walltime median minutes
        0.5f64..1.5,  // walltime sigma
        any::<u64>(), // seed
    )
        .prop_map(|(ia, median, sigma, seed)| {
            let mut spec = WorkloadSpec::small_test();
            spec.span = SimDuration::from_hours(6);
            spec.mean_interarrival = SimDuration::from_secs(ia);
            spec.walltime_median_mins = median;
            spec.walltime_sigma = sigma;
            (spec, seed)
        })
}

fn policy_strategy() -> impl Strategy<Value = PolicyParams> {
    (0u8..=4, 1usize..=4).prop_map(|(bf_i, w)| PolicyParams::new(bf_i as f64 * 0.25, w))
}

fn backfill_strategy() -> impl Strategy<Value = BackfillMode> {
    prop_oneof![
        Just(BackfillMode::None),
        Just(BackfillMode::Easy),
        Just(BackfillMode::Conservative),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (workload, policy, backfill) combination completes every job
    /// with consistent per-job records and bounded utilization.
    #[test]
    fn simulations_always_complete(
        (spec, seed) in spec_strategy(),
        policy in policy_strategy(),
        backfill in backfill_strategy(),
    ) {
        let jobs = spec.generate(seed);
        prop_assume!(!jobs.is_empty());
        let n = jobs.len();
        let out = SimulationBuilder::new(FlatCluster::new(512), jobs)
            .policy(policy)
            .backfill(backfill)
            .run();
        prop_assert_eq!(out.summary.jobs_completed, n);
        for rec in &out.per_job {
            prop_assert!(rec.start >= rec.submit);
            prop_assert!(rec.end > rec.start);
        }
        prop_assert!(out.summary.avg_utilization <= 1.0 + 1e-9);
        prop_assert!(out.summary.loc_percent <= 100.0 + 1e-9);
    }

    /// Capacity is never exceeded, reconstructed from per-job records.
    #[test]
    fn capacity_respected_under_random_policies(
        (spec, seed) in spec_strategy(),
        policy in policy_strategy(),
    ) {
        let total = 320u32;
        let jobs = spec.generate(seed);
        prop_assume!(!jobs.is_empty());
        let out = SimulationBuilder::new(FlatCluster::new(total), jobs)
            .policy(policy)
            .run();
        let mut events: Vec<(i64, i64)> = Vec::new();
        for rec in &out.per_job {
            events.push((rec.start.as_secs(), rec.nodes as i64));
            events.push((rec.end.as_secs(), -(rec.nodes as i64)));
        }
        events.sort();
        let mut busy = 0i64;
        for (_, delta) in events {
            busy += delta;
            prop_assert!(busy <= total as i64);
        }
    }

    /// Determinism holds for arbitrary seeds and policies.
    #[test]
    fn determinism_under_random_configs(
        (spec, seed) in spec_strategy(),
        policy in policy_strategy(),
    ) {
        let jobs = spec.generate(seed);
        prop_assume!(!jobs.is_empty());
        let run = || {
            SimulationBuilder::new(FlatCluster::new(256), jobs.clone())
                .policy(policy)
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.per_job, b.per_job);
        prop_assert_eq!(a.summary, b.summary);
    }

    /// FCFS + no backfill yields non-decreasing start times in
    /// submission order (strict seniority) — the defining property of
    /// the ablation baseline.
    #[test]
    fn no_backfill_fcfs_is_seniority_ordered(
        (spec, seed) in spec_strategy(),
    ) {
        let jobs = spec.generate(seed);
        prop_assume!(jobs.len() > 2);
        let out = SimulationBuilder::new(FlatCluster::new(256), jobs)
            .policy(PolicyParams::fcfs())
            .backfill(BackfillMode::None)
            .run();
        let mut recs = out.per_job.clone();
        recs.sort_by_key(|r| r.id);
        for pair in recs.windows(2) {
            // Submission order == id order for generated traces.
            prop_assert!(
                pair[1].start >= pair[0].start,
                "{:?} started before its senior {:?}",
                pair[1],
                pair[0]
            );
        }
    }
}
