//! Randomized property tests across the whole stack: random workload
//! specs and policies must always yield complete, capacity-respecting,
//! deterministic simulations. Driven by a seeded in-repo PRNG so every
//! case is reproducible.

use amjs::prelude::*;
use amjs_sim::rng::Xoshiro256;

/// Small random workloads: handful of size classes, random load.
fn random_spec(rng: &mut Xoshiro256) -> (WorkloadSpec, u64) {
    let mut spec = WorkloadSpec::small_test();
    spec.span = SimDuration::from_hours(6);
    spec.mean_interarrival = SimDuration::from_secs(60 + rng.next_below(540) as i64);
    spec.walltime_median_mins = 10.0 + rng.next_f64() * 80.0;
    spec.walltime_sigma = 0.5 + rng.next_f64();
    (spec, rng.next_raw())
}

fn random_policy(rng: &mut Xoshiro256) -> PolicyParams {
    PolicyParams::new(
        rng.next_below(5) as f64 * 0.25,
        1 + rng.next_below(4) as usize,
    )
}

fn random_backfill(rng: &mut Xoshiro256) -> BackfillMode {
    match rng.next_below(3) {
        0 => BackfillMode::None,
        1 => BackfillMode::Easy,
        _ => BackfillMode::Conservative,
    }
}

/// Any (workload, policy, backfill) combination completes every job
/// with consistent per-job records and bounded utilization.
#[test]
fn simulations_always_complete() {
    let mut rng = Xoshiro256::seed_from_u64(0x51AC);
    let mut cases = 0;
    while cases < 24 {
        let (spec, seed) = random_spec(&mut rng);
        let policy = random_policy(&mut rng);
        let backfill = random_backfill(&mut rng);
        let jobs = spec.generate(seed);
        if jobs.is_empty() {
            continue;
        }
        cases += 1;
        let n = jobs.len();
        let out = SimulationBuilder::new(FlatCluster::new(512), jobs)
            .policy(policy)
            .backfill(backfill)
            .run();
        assert_eq!(out.summary.jobs_completed, n);
        for rec in &out.per_job {
            assert!(rec.start >= rec.submit);
            assert!(rec.end > rec.start);
        }
        assert!(out.summary.avg_utilization <= 1.0 + 1e-9);
        assert!(out.summary.loc_percent <= 100.0 + 1e-9);
    }
}

/// Capacity is never exceeded, reconstructed from per-job records.
#[test]
fn capacity_respected_under_random_policies() {
    let mut rng = Xoshiro256::seed_from_u64(0xCA9A);
    let mut cases = 0;
    while cases < 24 {
        let (spec, seed) = random_spec(&mut rng);
        let policy = random_policy(&mut rng);
        let total = 320u32;
        let jobs = spec.generate(seed);
        if jobs.is_empty() {
            continue;
        }
        cases += 1;
        let out = SimulationBuilder::new(FlatCluster::new(total), jobs)
            .policy(policy)
            .run();
        let mut events: Vec<(i64, i64)> = Vec::new();
        for rec in &out.per_job {
            events.push((rec.start.as_secs(), rec.nodes as i64));
            events.push((rec.end.as_secs(), -(rec.nodes as i64)));
        }
        events.sort();
        let mut busy = 0i64;
        for (_, delta) in events {
            busy += delta;
            assert!(busy <= total as i64);
        }
    }
}

/// Determinism holds for arbitrary seeds and policies.
#[test]
fn determinism_under_random_configs() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE7E);
    let mut cases = 0;
    while cases < 24 {
        let (spec, seed) = random_spec(&mut rng);
        let policy = random_policy(&mut rng);
        let jobs = spec.generate(seed);
        if jobs.is_empty() {
            continue;
        }
        cases += 1;
        let run = || {
            SimulationBuilder::new(FlatCluster::new(256), jobs.clone())
                .policy(policy)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.per_job, b.per_job);
        assert_eq!(a.summary, b.summary);
    }
}

fn random_failures(rng: &mut Xoshiro256) -> amjs::core::failures::FailureSpec {
    use amjs::core::failures::{FailureSpec, RepairSpec};
    let repair_mins = 10 + rng.next_below(110) as i64;
    let repair = if rng.next_bool(0.5) {
        RepairSpec::Deterministic(SimDuration::from_mins(repair_mins))
    } else {
        RepairSpec::LogNormal {
            mean: SimDuration::from_mins(repair_mins),
            sigma: 0.3 + rng.next_f64(),
        }
    };
    FailureSpec {
        // Machine MTBF on 512 nodes: roughly 25–85 minutes — brutal,
        // so every case exercises kills, drains, and repairs.
        node_mtbf: SimDuration::from_hours(200 + rng.next_below(500) as i64),
        repair,
        seed: rng.next_raw(),
    }
}

/// Node-seconds are conserved under the failure lifecycle: the busy
/// integral (delivered node-hours of the energy report) must equal the
/// node-time of completed attempts plus the progress destroyed by
/// kills. Nothing leaks when jobs drain, retry, or are abandoned.
#[test]
fn node_seconds_conserved_under_failures() {
    use amjs::core::failures::RetryPolicy;
    use amjs::metrics::energy::EnergyModel;
    let mut rng = Xoshiro256::seed_from_u64(0xC04E);
    let mut cases = 0;
    while cases < 12 {
        let (spec, seed) = random_spec(&mut rng);
        let failures = random_failures(&mut rng);
        let retry = RetryPolicy {
            max_attempts: if rng.next_bool(0.5) {
                Some(1 + rng.next_below(4) as u32)
            } else {
                None
            },
            backoff_base: SimDuration::from_mins(rng.next_below(30) as i64),
        };
        let jobs = spec.generate(seed);
        if jobs.is_empty() {
            continue;
        }
        cases += 1;
        let out = SimulationBuilder::new(FlatCluster::new(512), jobs)
            .policy(random_policy(&mut rng))
            .failures(Some(failures))
            .retry_policy(retry)
            .energy_model(Some(EnergyModel::bgp()))
            .run();
        let completed_node_hours: f64 = out
            .per_job
            .iter()
            .map(|r| r.nodes as f64 * (r.end - r.start).as_secs() as f64 / 3600.0)
            .sum();
        let delivered = out.energy.unwrap().delivered_node_hours;
        let accounted = completed_node_hours + out.lost_node_hours;
        assert!(
            (delivered - accounted).abs() <= 1e-6 * delivered.max(1.0),
            "busy integral {delivered:.3} != completed {completed_node_hours:.3} \
             + lost {:.3}",
            out.lost_node_hours
        );
        // Every job is either completed or abandoned — none lost track of.
        assert_eq!(out.summary.jobs_completed, out.per_job.len());
    }
}

/// The full lifecycle (failures, drains, repairs, backoff retries,
/// abandonment) is a pure function of the configuration: two identical
/// runs produce byte-identical summary rows and identical series.
#[test]
fn lifecycle_determinism_is_byte_identical() {
    use amjs::core::failures::RetryPolicy;
    let mut rng = Xoshiro256::seed_from_u64(0xB17E);
    let mut cases = 0;
    while cases < 8 {
        let (spec, seed) = random_spec(&mut rng);
        let failures = random_failures(&mut rng);
        let policy = random_policy(&mut rng);
        let retry = RetryPolicy {
            max_attempts: Some(1 + rng.next_below(5) as u32),
            backoff_base: SimDuration::from_mins(rng.next_below(20) as i64),
        };
        let jobs = spec.generate(seed);
        if jobs.is_empty() {
            continue;
        }
        cases += 1;
        let run = || {
            SimulationBuilder::new(FlatCluster::new(384), jobs.clone())
                .policy(policy)
                .failures(Some(failures))
                .retry_policy(retry)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.summary.csv_row(), b.summary.csv_row());
        assert_eq!(a.per_job, b.per_job);
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.queue_depth, b.queue_depth);
    }
}

fn random_correlation(rng: &mut Xoshiro256) -> amjs::core::failures::CorrelationSpec {
    use amjs::core::failures::{BurstModel, CorrelationSpec, DomainSpec};
    let burst = match rng.next_below(3) {
        0 => BurstModel::None,
        1 => BurstModel::Weibull {
            shape: 0.5 + rng.next_f64(),
        },
        _ => BurstModel::Markov {
            rate_boost: 2.0 + rng.next_f64() * 18.0,
            mean_calm: SimDuration::from_hours(4 + rng.next_below(200) as i64),
            mean_burst: SimDuration::from_hours(1 + rng.next_below(12) as i64),
        },
    };
    CorrelationSpec {
        cascade_prob: rng.next_f64() * 0.6,
        // Small domains relative to the 384-node test machine so
        // escalation actually spans multiple quanta.
        domains: DomainSpec {
            midplane_nodes: 32,
            midplanes_per_rack: 2,
            racks_per_power_domain: 3,
        },
        burst,
    }
}

/// Correlated cascades and bursty arrivals stay a pure function of the
/// failure seed: two identical runs are byte-identical, every job is
/// accounted for, and the whole run passes the invariant oracle.
#[test]
fn cascaded_lifecycle_is_byte_identical_and_complete() {
    use amjs::core::failures::RetryPolicy;
    let mut rng = Xoshiro256::seed_from_u64(0xCA5C);
    let mut cases = 0;
    while cases < 6 {
        let (spec, seed) = random_spec(&mut rng);
        let failures = random_failures(&mut rng);
        let corr = random_correlation(&mut rng);
        let policy = random_policy(&mut rng);
        let retry = RetryPolicy {
            max_attempts: Some(1 + rng.next_below(5) as u32),
            backoff_base: SimDuration::from_mins(rng.next_below(20) as i64),
        };
        let jobs = spec.generate(seed);
        if jobs.is_empty() {
            continue;
        }
        cases += 1;
        let run = || {
            SimulationBuilder::new(FlatCluster::new(384), jobs.clone())
                .policy(policy)
                .failures(Some(failures))
                .correlated_failures(Some(corr))
                .retry_policy(retry)
                .oracle(true)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.summary.csv_row(), b.summary.csv_row());
        assert_eq!(a.per_job, b.per_job);
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.down_nodes, b.down_nodes);
        assert_eq!(
            a.domain_downtime.render_table(),
            b.domain_downtime.render_table()
        );
        // Every job is either completed or abandoned — none lost.
        assert_eq!(a.summary.jobs_completed, a.per_job.len());
    }
}

/// FCFS + no backfill yields non-decreasing start times in
/// submission order (strict seniority) — the defining property of
/// the ablation baseline.
#[test]
fn no_backfill_fcfs_is_seniority_ordered() {
    let mut rng = Xoshiro256::seed_from_u64(0x5E41);
    let mut cases = 0;
    while cases < 24 {
        let (spec, seed) = random_spec(&mut rng);
        let jobs = spec.generate(seed);
        if jobs.len() <= 2 {
            continue;
        }
        cases += 1;
        let out = SimulationBuilder::new(FlatCluster::new(256), jobs)
            .policy(PolicyParams::fcfs())
            .backfill(BackfillMode::None)
            .run();
        let mut recs = out.per_job.clone();
        recs.sort_by_key(|r| r.id);
        for pair in recs.windows(2) {
            // Submission order == id order for generated traces.
            assert!(
                pair[1].start >= pair[0].start,
                "{:?} started before its senior {:?}",
                pair[1],
                pair[0]
            );
        }
    }
}
