//! End-to-end persistence properties: crash-recoverable deterministic
//! replay across the whole stack.
//!
//! The contract under test is the strongest one the engine makes:
//! snapshot → restore → run produces a **byte-identical**
//! `SimulationOutcome` (summary CSV row, per-job records, sampled
//! series) to the uninterrupted run, across seeds × adaptive schemes ×
//! failure specs, with the runtime invariant oracle enabled. On top of
//! that: journal replay pinpoints the exact index of an injected
//! divergence, corrupt snapshots are rejected by checksum and fall back
//! to the previous one with a diagnostic, and journals from a different
//! run are refused by fingerprint.

use std::fs;
use std::path::{Path, PathBuf};

use amjs::prelude::*;
use amjs_core::failures::{CorrelationSpec, DomainSpec, FailureSpec, RepairSpec, RetryPolicy};
use amjs_sim::snapshot::SnapshotStore;

/// A fresh scratch directory under the system temp dir.
fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amjs-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Everything the user can observe from an outcome, as one string.
/// Equal strings ⇒ byte-identical summary, per-job records, and series
/// (Rust's `{:?}` for f64 prints the shortest round-trip repr, so equal
/// text means bit-equal floats).
fn outcome_digest(out: &SimulationOutcome) -> String {
    let series = [
        &out.queue_depth,
        &out.util_instant,
        &out.util_1h,
        &out.bf_series,
        &out.window_series,
        &out.availability,
        &out.down_nodes,
    ];
    format!(
        "{}\n{:?}\n{}\npasses={} backfilled={} interrupted={}",
        out.summary.csv_row(),
        out.per_job,
        amjs::metrics::series::to_csv(&series),
        out.scheduler_passes,
        out.backfilled_starts,
        out.interrupted_jobs,
    )
}

/// One configuration point of the test grid.
#[derive(Clone, Copy)]
struct Case {
    seed: u64,
    adaptive: bool,
    failures: bool,
}

impl Case {
    fn label(&self) -> String {
        format!(
            "seed{}-{}-{}",
            self.seed,
            if self.adaptive { "2d" } else { "static" },
            if self.failures { "faulty" } else { "clean" }
        )
    }

    fn builder(&self) -> SimulationBuilder<FlatCluster> {
        let mut spec = WorkloadSpec::small_test();
        spec.span = SimDuration::from_hours(6);
        let jobs = spec.generate(self.seed);
        assert!(!jobs.is_empty());
        let mut b = SimulationBuilder::new(FlatCluster::new(512), jobs)
            .policy(PolicyParams::new(0.5, 2))
            .backfill(BackfillMode::Easy)
            .oracle(true)
            .label(self.label());
        if self.adaptive {
            b = b.adaptive(AdaptiveScheme::two_d(400.0));
        }
        if self.failures {
            b = b
                .failures(Some(FailureSpec {
                    node_mtbf: SimDuration::from_hours(400),
                    repair: RepairSpec::LogNormal {
                        mean: SimDuration::from_hours(1),
                        sigma: 0.8,
                    },
                    seed: self.seed ^ 0xFA11,
                }))
                .retry_policy(RetryPolicy {
                    max_attempts: Some(4),
                    backoff_base: SimDuration::from_mins(5),
                })
                .correlated_failures(Some(CorrelationSpec {
                    cascade_prob: 0.4,
                    domains: DomainSpec {
                        midplane_nodes: 64,
                        midplanes_per_rack: 2,
                        racks_per_power_domain: 2,
                    },
                    burst: amjs_core::failures::BurstModel::Weibull { shape: 0.7 },
                }));
        }
        b
    }

    fn grid() -> Vec<Case> {
        let mut cases = Vec::new();
        for seed in [11, 29] {
            for adaptive in [false, true] {
                for failures in [false, true] {
                    cases.push(Case {
                        seed,
                        adaptive,
                        failures,
                    });
                }
            }
        }
        cases
    }
}

/// The tentpole property: a run that checkpoints, is "killed" at any
/// snapshot boundary, and resumes from the snapshot produces the exact
/// outcome of the uninterrupted run — across seeds × schemes × failure
/// specs, with the invariant oracle checking every event on both sides.
#[test]
fn resume_is_byte_identical_to_uninterrupted_run() {
    for case in Case::grid() {
        let dir = tempdir(&format!("resume-{}", case.label()));
        let baseline = outcome_digest(&case.builder().run());

        // The persistent run itself must be observationally identical:
        // persistence only watches, never steers.
        let spec = PersistSpec::new(&dir).snapshot_every_events(150).keep(3);
        let persistent = case.builder().run_persistent(&spec).unwrap();
        assert_eq!(
            outcome_digest(&persistent),
            baseline,
            "{}: persistence changed the outcome",
            case.label()
        );

        // Resume from a mid-run snapshot (what a SIGKILL leaves behind:
        // snapshots are written atomically, so the newest one is always
        // whole). Byte-identical outcome required.
        let store = SnapshotStore::new(&dir, 3);
        let snaps = store.list().unwrap();
        assert!(
            snaps.len() >= 2,
            "{}: expected several snapshots, got {snaps:?}",
            case.label()
        );
        let (mid_index, mid_path) = &snaps[snaps.len() / 2];
        let resumed = resume_simulation(mid_path, None, |d| panic!("unexpected diag: {d}"))
            .unwrap_or_else(|e| panic!("{}: resume failed: {e}", case.label()));
        assert_eq!(
            outcome_digest(&resumed),
            baseline,
            "{}: resume from snapshot {mid_index} diverged",
            case.label()
        );

        // Pointing at the directory resumes from the newest snapshot.
        let resumed_dir = resume_simulation(&dir, None, |_| {}).unwrap();
        assert_eq!(outcome_digest(&resumed_dir), baseline);

        // And the journal the persistent run left behind verifies clean.
        let report = replay_journal(&amjs::sim::journal::journal_path(&dir, 0), None, |d| {
            panic!("unexpected diag: {d}")
        })
        .unwrap();
        assert!(
            report.is_clean(),
            "{}: journal replay diverged at {:?}",
            case.label(),
            report.first_divergence
        );
        assert!(report.records > 0 && report.checked == report.records);

        fs::remove_dir_all(&dir).unwrap();
    }
}

/// A resumed run that keeps checkpointing writes a second journal
/// segment whose records verify against the same snapshots.
#[test]
fn resumed_run_continues_the_journal() {
    let case = Case {
        seed: 7,
        adaptive: false,
        failures: true,
    };
    let dir = tempdir("continue");
    let spec = PersistSpec::new(&dir).snapshot_every_events(200).keep(2);
    let baseline = outcome_digest(&case.builder().run_persistent(&spec).unwrap());

    let store = SnapshotStore::new(&dir, 2);
    let snaps = store.list().unwrap();
    let (mid_index, mid_path) = snaps[snaps.len() / 2].clone();
    assert!(mid_index > 0, "need a mid-run snapshot");

    let resumed = resume_simulation(&mid_path, Some(&spec), |_| {}).unwrap();
    assert_eq!(outcome_digest(&resumed), baseline);

    // The resumed segment starts at the snapshot's event index and
    // replays clean from the snapshots in the directory.
    let segment = amjs::sim::journal::journal_path(&dir, mid_index);
    assert!(segment.exists(), "resume should write its own segment");
    let report = replay_journal(&segment, None, |_| {}).unwrap();
    assert!(
        report.is_clean(),
        "diverged at {:?}",
        report.first_divergence
    );
    assert!(report.snapshot_index <= mid_index);

    fs::remove_dir_all(&dir).unwrap();
}

/// Flip one bit in one journal record's hash: replay must point at
/// exactly that record's event index, not merely "the CSV differs".
#[test]
fn replay_pinpoints_an_injected_divergence() {
    let case = Case {
        seed: 13,
        adaptive: true,
        failures: false,
    };
    let dir = tempdir("divergence");
    let spec = PersistSpec::new(&dir).snapshot_every_events(500).keep(2);
    case.builder().run_persistent(&spec).unwrap();

    let journal = amjs::sim::journal::journal_path(&dir, 0);
    let clean = replay_journal(&journal, None, |_| {}).unwrap();
    assert!(clean.is_clean());
    assert!(clean.records > 10);

    // Record k's world_hash lives at header(28) + k*24 + 16.
    let k = (clean.records / 2) as usize;
    let mut raw = fs::read(&journal).unwrap();
    raw[28 + k * 24 + 16] ^= 0x01;
    fs::write(&journal, &raw).unwrap();

    let report = replay_journal(&journal, None, |_| {}).unwrap();
    assert_eq!(
        report.first_divergence,
        Some(k as u64),
        "divergence must name the exact tampered record"
    );

    fs::remove_dir_all(&dir).unwrap();
}

/// Corrupt and truncated snapshots are detected by checksum and resume
/// falls back to the previous snapshot with a diagnostic; when nothing
/// valid remains the error names every rejected file.
#[test]
fn corrupt_snapshots_fall_back_with_diagnostics() {
    let case = Case {
        seed: 3,
        adaptive: false,
        failures: false,
    };
    let dir = tempdir("corrupt");
    let baseline = outcome_digest(&case.builder().run());
    let spec = PersistSpec::new(&dir).snapshot_every_events(150).keep(3);
    case.builder().run_persistent(&spec).unwrap();

    let store = SnapshotStore::new(&dir, 3);
    let snaps = store.list().unwrap();
    assert!(snaps.len() >= 3);
    let (_, newest) = snaps.last().unwrap().clone();

    // Bit-flip the newest snapshot: resuming from the directory must
    // reject it (checksum) and fall back, still reproducing the run.
    let mut raw = fs::read(&newest).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x10;
    fs::write(&newest, &raw).unwrap();
    let mut diags = Vec::new();
    let resumed = resume_simulation(&dir, None, |d| diags.push(d.to_string())).unwrap();
    assert_eq!(outcome_digest(&resumed), baseline);
    assert!(
        diags.iter().any(|d| d.contains("rejecting snapshot")),
        "fallback must be loud, got {diags:?}"
    );

    // Naming the corrupt file directly also falls back (with the path
    // in the diagnostic), because its name identifies where to look.
    let mut diags = Vec::new();
    let resumed = resume_simulation(&newest, None, |d| diags.push(d.to_string())).unwrap();
    assert_eq!(outcome_digest(&resumed), baseline);
    assert!(diags.iter().any(|d| d.contains("falling back")));

    // Truncation is equally fatal for a single file...
    let (_, second) = snaps[snaps.len() - 2].clone();
    let raw = fs::read(&second).unwrap();
    fs::write(&second, &raw[..raw.len() / 3]).unwrap();

    // ...and once every snapshot is damaged, resume refuses with an
    // error that names the rejected files.
    for (_, path) in &snaps {
        let raw = fs::read(path).unwrap();
        if raw.len() > 40 {
            fs::write(path, &raw[..40]).unwrap();
        }
    }
    let err = resume_simulation(&dir, None, |_| {}).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("snapshot-") && msg.contains(".snap"),
        "error should name the rejected files: {msg}"
    );

    fs::remove_dir_all(&dir).unwrap();
}

/// A journal can only be verified against snapshots of its own run:
/// fingerprints must match.
#[test]
fn replay_refuses_a_foreign_journal() {
    let dir_a = tempdir("fingerprint-a");
    let dir_b = tempdir("fingerprint-b");
    let spec_a = PersistSpec::new(&dir_a).snapshot_every_events(300);
    let spec_b = PersistSpec::new(&dir_b).snapshot_every_events(300);
    Case {
        seed: 5,
        adaptive: false,
        failures: false,
    }
    .builder()
    .run_persistent(&spec_a)
    .unwrap();
    Case {
        seed: 6,
        adaptive: false,
        failures: false,
    }
    .builder()
    .run_persistent(&spec_b)
    .unwrap();

    // Journal from run B against snapshots from run A.
    let journal_b = amjs::sim::journal::journal_path(&dir_b, 0);
    let err = replay_journal(&journal_b, Some(Path::new(&dir_a)), |_| {}).unwrap_err();
    assert!(
        err.to_string().contains("does not belong"),
        "expected a fingerprint refusal, got: {err}"
    );

    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}
