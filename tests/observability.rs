//! Observability guarantees, end to end:
//!
//! * **zero cost** — attaching no sink leaves every simulation output
//!   byte-identical, and attaching a sink never perturbs the outcome,
//!   across schemes × failure specs;
//! * **determinism** — two same-seed traced runs produce byte-identical
//!   JSONL trace files;
//! * **explain** — the reconstructed decision chain is internally
//!   consistent: score components sum to the recorded priority and
//!   backfill outcomes match their reasons.

use std::cell::RefCell;
use std::rc::Rc;

use amjs::core::failures::{FailureSpec, RepairSpec, RetryPolicy};
use amjs::obs::{explain_job, parse_trace, BackfillReason, JsonlSink, TraceEvent};
use amjs::prelude::*;

/// The policy/failure grid the zero-cost guarantee is checked on.
fn configs() -> Vec<(
    PolicyParams,
    AdaptiveScheme,
    Option<FailureSpec>,
    &'static str,
)> {
    let failures = FailureSpec {
        node_mtbf: SimDuration::from_hours(200),
        repair: RepairSpec::Deterministic(SimDuration::from_hours(1)),
        seed: 9,
    };
    vec![
        (PolicyParams::fcfs(), AdaptiveScheme::none(), None, "fcfs"),
        (
            PolicyParams::new(0.5, 2),
            AdaptiveScheme::none(),
            None,
            "balanced",
        ),
        (
            PolicyParams::new(0.25, 4),
            AdaptiveScheme::two_d(1000.0),
            None,
            "adaptive-2d",
        ),
        (
            PolicyParams::new(0.5, 2),
            AdaptiveScheme::none(),
            Some(failures),
            "balanced+failures",
        ),
    ]
}

fn builder(
    policy: PolicyParams,
    scheme: AdaptiveScheme,
    failures: Option<FailureSpec>,
) -> SimulationBuilder<FlatCluster> {
    let jobs = WorkloadSpec::small_test().generate(42);
    SimulationBuilder::new(FlatCluster::new(640), jobs)
        .policy(policy)
        .adaptive(scheme)
        .failures(failures)
        .retry_policy(RetryPolicy {
            max_attempts: Some(4),
            backoff_base: SimDuration::from_mins(5),
        })
}

fn fingerprint(out: &SimulationOutcome) -> (String, Vec<amjs::core::runner::JobOutcome>, u64, u64) {
    (
        out.summary.csv_row(),
        out.per_job.clone(),
        out.scheduler_passes,
        out.backfilled_starts,
    )
}

/// Sinks disabled ⇒ `run()` and `run_observed(disabled)` are the same
/// code path; sinks enabled ⇒ the outcome is still byte-identical.
/// Checked across schemes × failure specs.
#[test]
fn tracing_never_perturbs_the_outcome() {
    for (policy, scheme, failures, name) in configs() {
        let plain = builder(policy, scheme.clone(), failures).run();
        let disabled = builder(policy, scheme.clone(), failures)
            .run_observed(Observer::disabled())
            .0;

        let sink = Rc::new(RefCell::new(VecSink::new()));
        let obs = Observer::disabled().with_sink(sink.clone());
        let (traced, _obs) = builder(policy, scheme, failures).run_observed(obs);

        assert_eq!(fingerprint(&plain), fingerprint(&disabled), "{name}");
        assert_eq!(fingerprint(&plain), fingerprint(&traced), "{name}");
        assert!(
            !sink.borrow().records.is_empty(),
            "{name}: traced run recorded nothing"
        );
    }
}

/// Trace records carry non-decreasing engine event indices (the
/// correlation key into the persistence journal), and the failure
/// lifecycle shows up when failures are injected.
#[test]
fn trace_indices_are_monotonic_and_lifecycle_complete() {
    let (_, scheme, failures, _) = configs().remove(3);
    let sink = Rc::new(RefCell::new(VecSink::new()));
    let obs = Observer::disabled().with_sink(sink.clone());
    let (out, _obs) = builder(PolicyParams::new(0.5, 2), scheme, failures).run_observed(obs);

    let records = &sink.borrow().records;
    for pair in records.windows(2) {
        assert!(pair[0].index <= pair[1].index, "indices went backwards");
    }
    let count = |tag: &str| records.iter().filter(|r| r.event.tag() == tag).count();
    assert_eq!(
        count("job_queued"),
        out.summary.jobs_completed + count("job_killed")
    );
    assert_eq!(count("job_finished"), out.summary.jobs_completed);
    assert!(count("node_failed") > 0, "no failures traced");
    assert_eq!(count("node_failed"), count("node_repaired"));
}

/// Two same-seed traced runs produce byte-identical JSONL.
#[test]
fn same_seed_traces_are_byte_identical() {
    let trace_bytes = || {
        let sink = Rc::new(RefCell::new(VecSink::new()));
        let obs = Observer::disabled().with_sink(sink.clone());
        let _ = builder(PolicyParams::new(0.5, 2), AdaptiveScheme::none(), None).run_observed(obs);
        let mut text = String::new();
        for rec in &sink.borrow().records {
            text.push_str(&rec.to_json_line());
            text.push('\n');
        }
        text
    };
    let a = trace_bytes();
    let b = trace_bytes();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces differ");
    // And the JSONL round-trips.
    let parsed = parse_trace(&a).unwrap();
    assert_eq!(parsed.len(), a.lines().count());
}

/// The JSONL file sink writes the same bytes as the in-memory records.
#[test]
fn jsonl_sink_matches_in_memory_records() {
    let vec_sink = Rc::new(RefCell::new(VecSink::new()));
    let file_sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    let obs = Observer::disabled().with_sink(vec_sink.clone());
    let _ = builder(PolicyParams::fcfs(), AdaptiveScheme::none(), None).run_observed(obs);
    let obs = Observer::disabled().with_sink(file_sink.clone());
    let _ = builder(PolicyParams::fcfs(), AdaptiveScheme::none(), None).run_observed(obs);
    assert_eq!(
        file_sink.borrow().written(),
        vec_sink.borrow().records.len() as u64
    );
}

/// Golden consistency of the explain pipeline on the quickstart
/// workload: every recorded score satisfies eq. 3
/// (`S_p = BF·S_w + (1−BF)·S_r`), every backfill outcome matches its
/// reason, and the reconstructed timeline mentions the right steps.
#[test]
fn explain_reconstructs_consistent_decision_chains() {
    let sink = Rc::new(RefCell::new(VecSink::new()));
    let obs = Observer::disabled().with_sink(sink.clone());
    let (out, _obs) =
        builder(PolicyParams::new(0.5, 2), AdaptiveScheme::none(), None).run_observed(obs);

    let records = sink.borrow().records.clone();
    let mut scored = 0usize;
    for rec in &records {
        match &rec.event {
            TraceEvent::JobScored {
                s_w,
                s_r,
                bf,
                priority,
                ..
            } => {
                scored += 1;
                let recomputed = bf * s_w + (1.0 - bf) * s_r;
                assert!(
                    (recomputed - priority).abs() < 1e-9,
                    "score components {s_w}/{s_r}/{bf} do not sum to {priority}"
                );
                // Paper scores live on a 0–100 scale (eqs. 1–2).
                assert!((0.0..=100.0).contains(s_w) && (0.0..=100.0).contains(s_r));
            }
            TraceEvent::BackfillDecision {
                accepted, reason, ..
            } => {
                // An accepted backfill always fits now; rejections never
                // carry the accepting reason.
                assert_eq!(*accepted, *reason == BackfillReason::FitsNow);
            }
            _ => {}
        }
    }
    assert!(scored > 0, "no scores traced under balanced ordering");

    // Explain a job that was backfilled and one that was not.
    let backfilled = out.per_job.iter().find(|r| r.backfilled);
    let queued = out.per_job.iter().find(|r| !r.backfilled).unwrap();
    for (rec, via_backfill) in [(queued, false)]
        .into_iter()
        .chain(backfilled.map(|r| (r, true)))
    {
        let text = explain_job(&records, rec.id.0).unwrap();
        assert!(text.contains(&format!("decision chain for job#{}", rec.id.0)));
        assert!(text.contains("queued:"), "missing queue step:\n{text}");
        assert!(text.contains("started on"), "missing start step:\n{text}");
        assert!(text.contains("finished"), "missing finish step:\n{text}");
        if via_backfill {
            assert!(
                text.contains("via backfill") && text.contains("last start was a backfill"),
                "backfill not reflected:\n{text}"
            );
        }
    }

    // A job id that never existed is a clean error.
    assert!(explain_job(&records, 10_000_000).is_err());
}
