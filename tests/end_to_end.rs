//! End-to-end integration tests across all crates: full simulations on
//! both machine models, checking cross-cutting invariants the unit tests
//! cannot see.

use amjs::prelude::*;

fn small_jobs(seed: u64) -> Vec<Job> {
    WorkloadSpec::small_test().generate(seed)
}

/// Everything submitted completes, and the per-job records are
/// internally consistent.
#[test]
fn per_job_records_are_consistent() {
    let jobs = small_jobs(1);
    let by_id: std::collections::HashMap<JobId, Job> =
        jobs.iter().map(|j| (j.id, j.clone())).collect();
    let out = SimulationBuilder::new(FlatCluster::new(768), jobs.clone())
        .policy(PolicyParams::new(0.5, 3))
        .run();
    assert_eq!(out.summary.jobs_completed, jobs.len());
    for rec in &out.per_job {
        let job = &by_id[&rec.id];
        assert_eq!(rec.submit, job.submit);
        assert!(rec.start >= rec.submit, "{rec:?}");
        assert_eq!(rec.end, rec.start + job.runtime, "{rec:?}");
        assert_eq!(rec.nodes, job.nodes);
    }
    // Every job appears exactly once.
    let mut ids: Vec<JobId> = out.per_job.iter().map(|r| r.id).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), jobs.len());
}

/// At no instant may more nodes be in use than the machine has — checked
/// by sweeping the per-job records, independently of the utilization
/// tracker.
#[test]
fn node_capacity_is_never_exceeded() {
    let jobs = small_jobs(2);
    let total = 640u32;
    let out = SimulationBuilder::new(FlatCluster::new(total), jobs).run();

    let mut events: Vec<(amjs::sim::SimTime, i64)> = Vec::new();
    for rec in &out.per_job {
        events.push((rec.start, rec.nodes as i64));
        events.push((rec.end, -(rec.nodes as i64)));
    }
    events.sort_by_key(|&(t, delta)| (t, delta)); // releases (-) before starts (+) at ties
    let mut busy = 0i64;
    for (t, delta) in events {
        busy += delta;
        assert!(busy >= 0, "negative busy at {t}");
        assert!(busy <= total as i64, "over-allocation at {t}: {busy}");
    }
}

/// Same, on the partitioned machine with partition round-up: occupancy
/// accounted at rounded sizes must also fit.
#[test]
fn bgp_rounded_capacity_is_never_exceeded() {
    let mut jobs = small_jobs(3);
    for j in &mut jobs {
        j.nodes *= 8; // scale into partition-sized requests
    }
    let machine = BgpCluster::new(8, 512);
    let total = machine.total_nodes();
    let rounded = |n: u32| {
        use amjs::platform::Platform;
        BgpCluster::new(8, 512).rounded_size(n)
    };
    let out = SimulationBuilder::new(machine, jobs.clone()).run();
    assert_eq!(
        out.summary.jobs_completed + out.skipped_oversized,
        jobs.len()
    );

    let mut events: Vec<(amjs::sim::SimTime, i64)> = Vec::new();
    for rec in &out.per_job {
        let r = rounded(rec.nodes) as i64;
        events.push((rec.start, r));
        events.push((rec.end, -r));
    }
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut busy = 0i64;
    for (_, delta) in events {
        busy += delta;
        assert!(busy <= total as i64);
    }
}

/// The full pipeline is bit-deterministic: workload generation,
/// scheduling, adaptive tuning, metrics.
#[test]
fn full_stack_determinism() {
    let run = || {
        let jobs = WorkloadSpec::small_test().generate(9);
        SimulationBuilder::new(FlatCluster::new(512), jobs)
            .adaptive(AdaptiveScheme::two_d(300.0))
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.per_job, b.per_job);
    assert_eq!(a.queue_depth, b.queue_depth);
    assert_eq!(a.bf_series, b.bf_series);
    assert_eq!(a.window_series, b.window_series);
}

/// An SWF trace written from generated jobs replays to the same schedule
/// as the original jobs, modulo the parser's rebasing of the first
/// submission to t = 0 (every event shifts by the same offset).
#[test]
fn swf_round_trip_preserves_schedule() {
    let jobs = small_jobs(4);
    let offset = jobs[0].submit - amjs::sim::SimTime::ZERO;
    let text = swf::write(&jobs, &["round trip"]);
    let parsed = swf::parse(&text).unwrap();
    assert_eq!(parsed.jobs.len(), jobs.len());
    for (a, b) in jobs.iter().zip(&parsed.jobs) {
        assert_eq!(a.submit, b.submit + offset);
        assert_eq!(
            (a.nodes, a.walltime, a.runtime, a.user),
            (b.nodes, b.walltime, b.runtime, b.user)
        );
    }

    let direct = SimulationBuilder::new(FlatCluster::new(512), jobs).run();
    let replayed = SimulationBuilder::new(FlatCluster::new(512), parsed.jobs).run();
    assert_eq!(direct.per_job.len(), replayed.per_job.len());
    for (a, b) in direct.per_job.iter().zip(&replayed.per_job) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.start, b.start + offset);
        assert_eq!(a.end, b.end + offset);
    }
}

/// Backfill mode ordering: no-backfill waits are the worst, conservative
/// sits at or above EASY (stricter admission), and all three complete
/// the full workload.
#[test]
fn backfill_modes_order_sensibly() {
    let jobs = small_jobs(5);
    let mut waits = Vec::new();
    for mode in [
        BackfillMode::None,
        BackfillMode::Conservative,
        BackfillMode::Easy,
    ] {
        // 640 nodes: congested for the small-test mix (max job 512) but
        // large enough that nothing is oversized.
        let out = SimulationBuilder::new(FlatCluster::new(640), jobs.clone())
            .backfill(mode)
            .run();
        assert_eq!(out.summary.jobs_completed, jobs.len());
        waits.push(out.summary.avg_wait_mins);
    }
    let (none, conservative, easy) = (waits[0], waits[1], waits[2]);
    assert!(
        none >= conservative && none >= easy,
        "no-backfill {none:.1} must be worst (cons {conservative:.1}, easy {easy:.1})"
    );
}

/// The adaptive scheme's sampled series reflect actual tunable motion
/// within configured bounds.
#[test]
fn adaptive_series_stay_in_bounds() {
    let jobs = small_jobs(6);
    let out = SimulationBuilder::new(FlatCluster::new(384), jobs)
        .adaptive(AdaptiveScheme::two_d(200.0))
        .run();
    for &(_, bf) in out.bf_series.points() {
        assert!((0.5..=1.0).contains(&bf), "bf={bf}");
    }
    for &(_, w) in out.window_series.points() {
        assert!((1.0..=4.0).contains(&w), "w={w}");
    }
}

/// Oversized jobs are dropped up front and never wedge the simulation.
#[test]
fn oversized_jobs_never_wedge() {
    let mut jobs = small_jobs(7);
    jobs[0].nodes = 100_000;
    jobs[10].nodes = 50_000;
    let n = jobs.len();
    let out = SimulationBuilder::new(BgpCluster::new(8, 512), jobs).run();
    assert_eq!(out.skipped_oversized, 2);
    assert_eq!(out.summary.jobs_completed, n - 2);
}

/// Loss of capacity and utilization live in sane ranges on a congested
/// partitioned run.
#[test]
fn metric_ranges_on_partitioned_machine() {
    let mut jobs = small_jobs(8);
    for j in &mut jobs {
        j.nodes *= 8;
    }
    let out = SimulationBuilder::new(BgpCluster::new(8, 512), jobs).run();
    assert!(out.summary.loc_percent >= 0.0 && out.summary.loc_percent <= 100.0);
    assert!(out.summary.avg_utilization > 0.0 && out.summary.avg_utilization <= 1.0);
    assert!(out.summary.max_wait_mins >= out.summary.avg_wait_mins);
}
