//! # amjs — Adaptive Metric-Aware Job Scheduling
//!
//! Umbrella crate for the reproduction of *"Adaptive Metric-Aware Job
//! Scheduling for Production Supercomputers"* (Tang, Ren, Lan, Desai —
//! ICPP 2012). It re-exports the workspace crates under stable module
//! names so downstream users depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event engine (`amjs-sim`);
//! * [`platform`] — machine models incl. the Blue Gene/P partitioned
//!   torus (`amjs-platform`);
//! * [`workload`] — job model, SWF traces, synthetic Intrepid-like
//!   generator (`amjs-workload`);
//! * [`metrics`] — wait / queue depth / fairness / utilization / loss of
//!   capacity (`amjs-metrics`);
//! * [`obs`] — observability: decision tracing, span profiling, live
//!   Prometheus exposition (`amjs-obs`);
//! * [`core`] — the paper's contribution: metric-aware scheduling and
//!   adaptive policy tuning (`amjs-core`).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use amjs::prelude::*;
//!
//! // A small machine and a small synthetic workload.
//! let platform = FlatCluster::new(1024);
//! let workload = WorkloadSpec::small_test().generate(42);
//!
//! // The paper's scheduler: balance factor 0.5, window size 4, EASY.
//! let policy = PolicyParams::new(0.5, 4);
//! let outcome = SimulationBuilder::new(platform, workload)
//!     .policy(policy)
//!     .run();
//!
//! assert!(outcome.summary.jobs_completed > 0);
//! ```

pub use amjs_core as core;
pub use amjs_metrics as metrics;
pub use amjs_obs as obs;
pub use amjs_platform as platform;
pub use amjs_sim as sim;
pub use amjs_workload as workload;

/// One-stop imports for examples and downstream applications.
pub mod prelude {
    pub use amjs_core::adaptive::{
        AdaptiveScheme, BfTuner, MonitoredMetric, TunerConfig, TwoDTuner, WindowTuner,
    };
    pub use amjs_core::persist::{
        replay_journal, resume_simulation, PersistError, PersistSpec, ReplayReport,
    };
    pub use amjs_core::policy::PolicyParams;
    pub use amjs_core::runner::{SimulationBuilder, SimulationOutcome};
    pub use amjs_core::scheduler::{BackfillMode, Scheduler};
    pub use amjs_metrics::report::MetricsSummary;
    pub use amjs_obs::{Observer, Profiler, RingSink, TraceEvent, TraceRecord, VecSink};
    pub use amjs_platform::bgp::BgpCluster;
    pub use amjs_platform::flat::FlatCluster;
    pub use amjs_platform::Platform;
    pub use amjs_sim::{SimDuration, SimTime};
    pub use amjs_workload::job::{Job, JobId};
    pub use amjs_workload::swf;
    pub use amjs_workload::synth::WorkloadSpec;
}
