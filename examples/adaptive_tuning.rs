//! Adaptive policy tuning on a bursty Intrepid-like month.
//!
//! Demonstrates the paper's headline capability: the scheduler watches
//! its own metrics (queue depth every 30 minutes; 10-hour vs. 24-hour
//! utilization trend) and retunes the policy at runtime — the balance
//! factor drops toward SJF when the queue gets deep and returns to FCFS
//! when it drains; the allocation window widens when utilization trends
//! down.
//!
//! Run: `cargo run --release --example adaptive_tuning`
//! (takes a few seconds: four full month-long simulations)

use amjs::prelude::*;

fn main() {
    let jobs = WorkloadSpec::intrepid_month().generate(7);
    println!(
        "workload: {} jobs over one month on Intrepid (40,960 nodes)\n",
        jobs.len()
    );

    // Static baseline to calibrate the tuning threshold — the paper sets
    // it "based on the whole month's average" queue depth.
    let base = SimulationBuilder::new(BgpCluster::intrepid(), jobs.clone())
        .policy(PolicyParams::fcfs())
        .backfill_depth(Some(16))
        .run();
    let threshold = base.queue_depth.mean_value().unwrap();
    println!("FCFS average queue depth: {threshold:.0} min → tuning threshold\n");

    let mut runs = vec![base];
    for (label, scheme) in [
        ("BF Adapt.", AdaptiveScheme::bf_adaptive(threshold)),
        ("W Adapt.", AdaptiveScheme::window_adaptive()),
        ("2D Adapt.", AdaptiveScheme::two_d(threshold)),
    ] {
        runs.push(
            SimulationBuilder::new(BgpCluster::intrepid(), jobs.clone())
                .adaptive(scheme)
                .backfill_depth(Some(16))
                .label(label)
                .run(),
        );
    }

    println!("{}", amjs::metrics::report::table_header());
    for run in &runs {
        println!("{}", run.summary.table_row());
    }

    // Show the 2D tuner actually moving: how often each knob left its
    // base value.
    let twod = runs.last().unwrap();
    let samples = twod.bf_series.len().max(1);
    let bf_low = twod
        .bf_series
        .points()
        .iter()
        .filter(|&&(_, v)| v < 1.0)
        .count();
    let w_wide = twod
        .window_series
        .points()
        .iter()
        .filter(|&&(_, v)| v > 1.0)
        .count();
    println!(
        "\n2D tuner activity: BF below 1.0 at {}% of check points, \
         window above 1 at {}%",
        bf_low * 100 / samples,
        w_wide * 100 / samples
    );
    println!(
        "peak queue depth: FCFS {:.0} min vs 2D adaptive {:.0} min",
        runs[0].queue_depth.max_value().unwrap(),
        twod.queue_depth.max_value().unwrap()
    );
}
