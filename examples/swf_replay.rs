//! Replay a real trace in Standard Workload Format.
//!
//! Pass a path to any SWF file (the Parallel Workloads Archive format)
//! and a machine size; the trace is replayed through the metric-aware
//! scheduler under FCFS and under the balanced policy, and the summary
//! metrics are compared. Without arguments, a bundled in-memory sample
//! trace is used so the example always runs.
//!
//! Run: `cargo run --release --example swf_replay [trace.swf [nodes]]`

use amjs::prelude::*;
use amjs::workload::stats::WorkloadStats;

/// A tiny hand-written SWF snippet used when no file is given.
const SAMPLE_SWF: &str = "\
; Sample trace: 8 jobs on a 512-node machine
1 0    -1 3600  128 -1 -1 128 7200  -1 1 1 -1 -1 -1 -1 -1 -1
2 60   -1 1800  256 -1 -1 256 3600  -1 1 2 -1 -1 -1 -1 -1 -1
3 120  -1 7200  512 -1 -1 512 7200  -1 1 1 -1 -1 -1 -1 -1 -1
4 300  -1 600   64  -1 -1 64  900   -1 1 3 -1 -1 -1 -1 -1 -1
5 420  -1 5400  128 -1 -1 128 7200  -1 1 2 -1 -1 -1 -1 -1 -1
6 600  -1 900   32  -1 -1 32  1800  -1 1 4 -1 -1 -1 -1 -1 -1
7 900  -1 2700  256 -1 -1 256 3600  -1 1 1 -1 -1 -1 -1 -1 -1
8 1500 -1 450   64  -1 -1 64  600   -1 1 3 -1 -1 -1 -1 -1 -1
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (text, nodes, source) = match args.get(1) {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let nodes: u32 = args
                .get(2)
                .map(|s| s.parse().expect("nodes must be an integer"))
                .unwrap_or(40_960);
            (text, nodes, path.clone())
        }
        None => (SAMPLE_SWF.to_string(), 512, "<bundled sample>".to_string()),
    };

    let parsed = swf::parse(&text).unwrap_or_else(|e| panic!("SWF parse error: {e}"));
    println!(
        "trace {source}: {} jobs parsed, {} skipped",
        parsed.jobs.len(),
        parsed.skipped
    );
    for line in &parsed.header {
        println!("  ; {line}");
    }
    println!(
        "\n{}",
        WorkloadStats::compute(&parsed.jobs).render(Some(nodes))
    );

    println!("{}", amjs::metrics::report::table_header());
    for (label, policy) in [
        ("FCFS", PolicyParams::fcfs()),
        ("balanced", PolicyParams::new(0.5, 4)),
    ] {
        let outcome = SimulationBuilder::new(FlatCluster::new(nodes), parsed.jobs.clone())
            .policy(policy)
            .label(label)
            .run();
        println!("{}", outcome.summary.table_row());
        if outcome.skipped_oversized > 0 {
            println!(
                "  ({} jobs larger than the machine were skipped)",
                outcome.skipped_oversized
            );
        }
    }
}
