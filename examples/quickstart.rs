//! Quickstart: simulate one scheduling policy on a small machine.
//!
//! Generates a small synthetic workload, runs it through the
//! metric-aware scheduler with the paper's recommended balanced policy
//! (`BF = 0.5, W = 4`, EASY backfilling), and prints the summary metrics
//! alongside the FCFS baseline.
//!
//! Run: `cargo run --release --example quickstart`

use amjs::prelude::*;

fn main() {
    // A 1024-node cluster of interchangeable nodes and ~350 jobs over
    // 12 hours (deterministic: same seed, same trace).
    let jobs = WorkloadSpec::small_test().generate(42);
    println!("workload: {} jobs on a 1024-node cluster\n", jobs.len());

    // Baseline: FCFS + EASY backfilling — "the most commonly used
    // scheduling policy" per the paper.
    let fcfs = SimulationBuilder::new(FlatCluster::new(1024), jobs.clone())
        .policy(PolicyParams::fcfs())
        .run();

    // The paper's metric-aware policy: balance factor 0.5 blends
    // seniority with short-job preference; window size 4 allocates jobs
    // in groups of four, picking the group order that starts the most
    // jobs with the least makespan.
    let balanced = SimulationBuilder::new(FlatCluster::new(1024), jobs)
        .policy(PolicyParams::new(0.5, 4))
        .run();

    println!("{}", amjs::metrics::report::table_header());
    println!("{}", fcfs.summary.table_row());
    println!("{}", balanced.summary.table_row());

    let improvement = 100.0 * (1.0 - balanced.summary.avg_wait_mins / fcfs.summary.avg_wait_mins);
    println!(
        "\nbalanced policy cut the average wait by {improvement:.0}% \
         (at the cost of {} vs {} unfairly delayed jobs)",
        balanced.summary.unfair_jobs, fcfs.summary.unfair_jobs
    );
}
