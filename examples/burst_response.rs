//! How policies respond to a submission burst — the scenario behind the
//! paper's adaptive tuning.
//!
//! Builds a workload that is calm except for one severe two-hour burst
//! of small, short jobs, then prints a side-by-side timeline of queue
//! depth for FCFS, SJF, and the adaptive policy. The adaptive scheduler
//! behaves like FCFS while the queue is calm (good fairness), flips to
//! the efficiency-oriented policy when the burst blows the queue past
//! the threshold, and flips back once drained.
//!
//! Run: `cargo run --release --example burst_response`

use amjs::prelude::*;
use amjs::workload::synth::BurstSpec;

fn main() {
    // Calm background with one violent burst at hour 6.
    let mut spec = WorkloadSpec::small_test();
    spec.span = SimDuration::from_hours(24);
    spec.mean_interarrival = SimDuration::from_secs(400);
    spec.walltime_sigma = 1.4;
    spec.bursts = vec![BurstSpec {
        start: SimTime::from_hours(6),
        duration: SimDuration::from_hours(3),
        rate_multiplier: 40.0,
        walltime_scale: 0.4,
        size_cap: Some(64),
    }];
    let jobs = spec.generate(3);
    println!("workload: {} jobs, burst at hours 6-9\n", jobs.len());

    let run = |label: &str, policy: PolicyParams, adaptive: Option<f64>| {
        let mut b = SimulationBuilder::new(FlatCluster::new(512), jobs.clone())
            .policy(policy)
            .label(label);
        if let Some(th) = adaptive {
            b = b.adaptive(AdaptiveScheme::bf_adaptive(th));
        }
        b.run()
    };

    let fcfs = run("FCFS", PolicyParams::fcfs(), None);
    // Threshold: the calm-period queue depth is near zero, so any burst
    // blows past a few hundred queued minutes.
    let adaptive = run("adaptive", PolicyParams::fcfs(), Some(300.0));
    let sjf = run("SJF", PolicyParams::sjf(), None);

    println!(
        "{:<7} {:>12} {:>12} {:>10} {:>8}",
        "policy", "peak QD(min)", "mean QD(min)", "wait(min)", "unfair#"
    );
    for o in [&fcfs, &sjf, &adaptive] {
        println!(
            "{:<7} {:>12.0} {:>12.0} {:>10.1} {:>8}",
            o.summary.label,
            o.queue_depth.max_value().unwrap_or(0.0),
            o.queue_depth.mean_value().unwrap_or(0.0),
            o.summary.avg_wait_mins,
            o.summary.unfair_jobs
        );
    }

    // Timeline: queue depth every 2 hours, plus where the adaptive BF sat.
    println!("\nhour   FCFS-QD    SJF-QD  adapt-QD  adapt-BF");
    for h in (2..=20).step_by(2) {
        let t = SimTime::from_hours(h);
        let qd = |o: &SimulationOutcome| o.queue_depth.value_at(t).unwrap_or(0.0).max(0.0);
        println!(
            "{h:>4} {:>9.0} {:>9.0} {:>9.0} {:>9.2}",
            qd(&fcfs),
            qd(&sjf),
            qd(&adaptive),
            adaptive.bf_series.value_at(t).unwrap_or(1.0)
        );
    }
    println!(
        "\nadaptive flips to BF=0.5 during the burst and back to FCFS after — \
         the paper's Algorithm 1 in action."
    );
}
