//! Explore the policy space: sweep the balance factor and window size in
//! parallel and print the wait/fairness/LoC frontier.
//!
//! This is the "metrics balancer" workflow from the paper's Fig. 1 used
//! as a design tool: a site operator simulates recent workload under a
//! grid of `(BF, W)` configurations and picks the point whose tradeoff
//! matches the site's priorities. Threads are used exactly as the
//! experiment harness does: one deterministic single-threaded simulation
//! per configuration.
//!
//! Run: `cargo run --release --example policy_explorer`

use std::thread;

use amjs::prelude::*;

fn main() {
    let jobs = WorkloadSpec::intrepid_week().generate(11);
    println!(
        "workload: {} jobs (one week, Intrepid-like); sweeping 5x3 policies\n",
        jobs.len()
    );

    let bfs = [1.0, 0.75, 0.5, 0.25, 0.0];
    let windows = [1usize, 2, 4];

    // Fan out: each (BF, W) cell simulates independently.
    let results: Vec<(f64, usize, amjs::metrics::MetricsSummary)> = thread::scope(|scope| {
        let mut handles = Vec::new();
        for &bf in &bfs {
            for &w in &windows {
                let jobs = jobs.clone();
                handles.push(scope.spawn(move || {
                    let outcome = SimulationBuilder::new(BgpCluster::intrepid(), jobs)
                        .policy(PolicyParams::new(bf, w))
                        .backfill_depth(Some(16))
                        .run();
                    (bf, w, outcome.summary)
                }));
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>7}",
        "policy", "wait(min)", "unfair#", "LoC(%)", "util"
    );
    for (bf, w, s) in &results {
        println!(
            "BF={bf:<4} W={w:<3} {:>10.1} {:>8} {:>8.1} {:>7.3}",
            s.avg_wait_mins, s.unfair_jobs, s.loc_percent, s.avg_utilization
        );
    }

    // Pareto frontier on (wait, unfair): a point survives if no other
    // policy is at least as good on both and better on one.
    let mut frontier: Vec<&(f64, usize, amjs::metrics::MetricsSummary)> = Vec::new();
    for cand in &results {
        let dominated = results.iter().any(|other| {
            (other.2.avg_wait_mins < cand.2.avg_wait_mins
                && other.2.unfair_jobs <= cand.2.unfair_jobs)
                || (other.2.avg_wait_mins <= cand.2.avg_wait_mins
                    && other.2.unfair_jobs < cand.2.unfair_jobs)
        });
        if !dominated {
            frontier.push(cand);
        }
    }
    frontier.sort_by(|a, b| a.2.avg_wait_mins.partial_cmp(&b.2.avg_wait_mins).unwrap());
    println!("\nwait/fairness Pareto frontier:");
    for (bf, w, s) in frontier {
        println!(
            "  BF={bf}, W={w}: wait {:.1} min, {} unfair jobs",
            s.avg_wait_mins, s.unfair_jobs
        );
    }
}
