//! The paper's §V future work, exercised through the public API: energy
//! accounting and node-failure injection as additional "system cost"
//! metrics alongside wait, fairness, and loss of capacity.
//!
//! Run: `cargo run --release --example energy_and_failures`

use amjs::core::failures::{FailureSpec, RepairSpec};
use amjs::metrics::energy::EnergyModel;
use amjs::prelude::*;

fn main() {
    let jobs = WorkloadSpec::intrepid_week().generate(21);
    println!(
        "workload: {} jobs (one week) on Intrepid; node MTBF 40 years \
         (~1 machine failure / 8.6 h)\n",
        jobs.len()
    );

    let failure_spec = FailureSpec {
        node_mtbf: SimDuration::from_hours(40 * 365 * 24),
        repair: RepairSpec::bgp_default(),
        seed: 1234,
    };

    println!(
        "{:<10} {:>10} {:>11} {:>12} {:>11} {:>11}",
        "policy", "wait(min)", "interrupts", "lost node-h", "energy MWh", "kWh/node-h"
    );
    for (label, policy) in [
        ("FCFS", PolicyParams::fcfs()),
        ("balanced", PolicyParams::new(0.5, 4)),
    ] {
        let out = SimulationBuilder::new(BgpCluster::intrepid(), jobs.clone())
            .policy(policy)
            .backfill_depth(Some(16))
            .failures(Some(failure_spec))
            .energy_model(Some(EnergyModel::bgp()))
            .label(label)
            .run();
        let e = out.energy.unwrap();
        println!(
            "{label:<10} {:>10.1} {:>11} {:>12.0} {:>11.1} {:>11.4}",
            out.summary.avg_wait_mins,
            out.interrupted_jobs,
            out.lost_node_hours,
            e.total_mwh,
            e.kwh_per_node_hour,
        );
    }

    println!(
        "\nEach interruption destroys the victim's progress; policies that keep\n\
         long jobs waiting less (and thus in flight for less total calendar\n\
         time) lose less work. Energy per delivered node-hour improves with\n\
         utilization — the same lever the paper's window tuning pulls."
    );
}
